"""Encoder/decoder base classes, the steppable state contract and stream
helpers.

The paper's codes are *stateful*: both ends of the bus keep small registers
(the previous address, the previous encoded word) and must stay in lock-step.
Two equivalent views of that contract live here:

* the classic mutable one — ``reset()`` returns the codec to its power-up
  state, ``encode(address, sel)`` / ``decode(word, sel)`` advance one clock
  cycle in place;
* the pure-functional *steppable* one — :meth:`BusEncoder.initial_state`
  yields an immutable :class:`CodecState` snapshot and
  ``step(state, address, sel) -> (state', word)`` (mirrored by
  :meth:`BusDecoder.step`) advances one cycle without touching any
  pre-existing state object.

The steppable view is what lets the batch engine (:mod:`repro.engine`) cut a
stream into chunks, checkpoint the codec registers at a chunk boundary and
resume the stream in a different worker process: a :class:`CodecState` is
hashable, picklable and can be restored into a *fresh* encoder/decoder
instance.  It is implemented once here — the generic snapshot/restore
machinery freezes an instance's registers into an immutable tree — and every
concrete codec inherits it; :class:`BusEncoder`/:class:`BusDecoder` remain
the thin mutable adapters over it that the per-address hot loops use.

``sel`` is the instruction/data select signal of a multiplexed address bus
(``1`` = instruction slot, ``0`` = data slot).  It is *already present* on a
multiplexed bus regardless of the encoding, so it is not counted as a
redundant line; codes that ignore it (binary, Gray, bus-invert, plain T0)
simply do not read it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.word import EncodedWord, mask
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span as obs_span

#: Select-line value marking an instruction slot on a multiplexed bus.
SEL_INSTRUCTION = 1
#: Select-line value marking a data slot on a multiplexed bus.
SEL_DATA = 0


# ---------------------------------------------------------------------------
# Steppable state: immutable codec-register snapshots
# ---------------------------------------------------------------------------

_STATE_SCALARS = (str, int, float, bool, bytes, type(None))


def _freeze(value: Any) -> Any:
    """Convert a codec-register value into an immutable, hashable form.

    The output is either a scalar or a tagged tuple, so the two never
    collide and :func:`_thaw` can invert the mapping exactly.
    """
    if isinstance(value, _STATE_SCALARS):
        return value
    if isinstance(value, tuple):
        return ("tuple", tuple(_freeze(item) for item in value))
    if isinstance(value, list):
        return ("list", tuple(_freeze(item) for item in value))
    if isinstance(value, dict):
        return (
            "dict",
            tuple((key, _freeze(item)) for key, item in sorted(value.items())),
        )
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(_freeze(item) for item in value)))
    if hasattr(value, "__dict__"):
        return (
            "object",
            type(value),
            tuple(
                (key, _freeze(item))
                for key, item in sorted(vars(value).items())
            ),
        )
    raise TypeError(
        f"cannot snapshot codec state value of type {type(value).__name__}"
    )


def _thaw(value: Any) -> Any:
    """Rebuild the live value a :func:`_freeze` output came from."""
    if not isinstance(value, tuple):
        return value
    tag = value[0]
    if tag == "tuple":
        return tuple(_thaw(item) for item in value[1])
    if tag == "list":
        return [_thaw(item) for item in value[1]]
    if tag == "dict":
        return {key: _thaw(item) for key, item in value[1]}
    if tag == "set":
        return {_thaw(item) for item in value[1]}
    if tag == "object":
        _, cls, items = value
        instance = object.__new__(cls)
        for key, item in items:
            object.__setattr__(instance, key, _thaw(item))
        return instance
    raise ValueError(f"malformed frozen state tag {tag!r}")


@dataclass(frozen=True)
class CodecState:
    """An immutable snapshot of one codec end's registers.

    Produced by :meth:`BusEncoder.initial_state` /
    :meth:`BusEncoder.snapshot_state` (and the decoder mirrors), consumed
    by ``step``/``step_stream``/``restore_state``.  States are hashable,
    comparable and picklable, so they can cross process boundaries — the
    property the batch engine's chunk handoff relies on.

    ``owner`` records the producing class's qualified name; restoring a
    state into a different codec class is rejected rather than silently
    corrupting registers.
    """

    owner: str
    payload: Any

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CodecState({self.owner})"


class SteppableStateMixin:
    """Generic snapshot/restore over an instance's register attributes.

    Implemented once; both :class:`BusEncoder` and :class:`BusDecoder`
    inherit it.  The snapshot covers *every* instance attribute
    (configuration included — configuration is immutable, so restoring it
    is harmless), which keeps concrete codecs free of any per-class state
    declarations.
    """

    def snapshot_state(self) -> CodecState:
        """Freeze the current registers into an immutable state."""
        return CodecState(
            owner=type(self).__qualname__,
            payload=tuple(
                (key, _freeze(item)) for key, item in sorted(vars(self).items())
            ),
        )

    def restore_state(self, state: CodecState) -> None:
        """Load a snapshot back into this instance (any instance of the
        producing class, not just the one that took the snapshot)."""
        if state.owner != type(self).__qualname__:
            raise ValueError(
                f"cannot restore {state.owner} state into "
                f"{type(self).__qualname__}"
            )
        self.__dict__.clear()
        for key, item in state.payload:
            self.__dict__[key] = _thaw(item)

    def initial_state(self) -> CodecState:
        """The power-up state (the state ``reset()`` establishes)."""
        self.reset()  # type: ignore[attr-defined]
        return self.snapshot_state()


def _paired_streams(
    first: Iterable[Any], second: Iterable[Any], first_name: str, second_name: str
) -> Tuple[List[Any], List[Any]]:
    """Materialize two parallel streams, rejecting length mismatches.

    ``zip`` would silently truncate to the shorter stream — a lost bus
    cycle that corrupts every downstream transition count — so mismatched
    lengths are an error, reported with both lengths.
    """
    first_list = list(first)
    second_list = list(second)
    if len(first_list) != len(second_list):
        raise ValueError(
            f"{first_name} length {len(first_list)} != "
            f"{second_name} length {len(second_list)}"
        )
    return first_list, second_list


class BusEncoder(SteppableStateMixin, abc.ABC):
    """Transforms an address stream into an encoded bus-word stream.

    Parameters
    ----------
    width:
        Number of address lines ``N``.
    """

    #: Names of the code's redundant lines, in ``EncodedWord.extras`` order.
    extra_lines: Tuple[str, ...] = ()

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError(f"bus width must be positive, got {width}")
        self.width = width
        self._mask = mask(width)

    @abc.abstractmethod
    def reset(self) -> None:
        """Return the encoder to its power-up state."""

    @abc.abstractmethod
    def encode(self, address: int, sel: int = SEL_INSTRUCTION) -> EncodedWord:
        """Encode one address; advances the encoder by one clock cycle."""

    def step(
        self, state: CodecState, address: int, sel: int = SEL_INSTRUCTION
    ) -> Tuple[CodecState, EncodedWord]:
        """Pure-functional single-cycle advance: ``state -> (state', word)``.

        ``state`` is not mutated; the instance's own registers are
        overwritten (it acts as scratch space), so interleaving ``step``
        with direct ``encode`` calls on the same instance is not
        meaningful.
        """
        self.restore_state(state)
        word = self.encode(address, sel)
        return self.snapshot_state(), word

    def step_stream(
        self,
        state: CodecState,
        addresses: Sequence[int],
        sels: Optional[Sequence[int]] = None,
    ) -> Tuple[CodecState, List[EncodedWord]]:
        """Encode a chunk starting from ``state``; returns the state after
        the chunk's last cycle.

        This is the engine's chunk primitive: snapshotting once per chunk
        rather than once per address keeps the pure API's overhead off the
        hot loop.
        """
        if sels is not None:
            addresses, sels = _paired_streams(
                addresses, sels, "addresses", "sels"
            )
        self.restore_state(state)
        if sels is None:
            words = [self.encode(address) for address in addresses]
        else:
            words = [
                self.encode(address, sel)
                for address, sel in zip(addresses, sels)
            ]
        return self.snapshot_state(), words

    def encode_stream(
        self, addresses: Iterable[int], sels: Optional[Iterable[int]] = None
    ) -> List[EncodedWord]:
        """Encode a whole stream (resets first)."""
        self.reset()
        if sels is None:
            return [self.encode(address) for address in addresses]
        addresses, sels = _paired_streams(addresses, sels, "addresses", "sels")
        return [
            self.encode(address, sel) for address, sel in zip(addresses, sels)
        ]

    def _check_address(self, address: int) -> int:
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        if address > self._mask:
            raise ValueError(
                f"address {address:#x} does not fit on a {self.width}-bit bus"
            )
        return address


class BusDecoder(SteppableStateMixin, abc.ABC):
    """Recovers the address stream from the encoded bus-word stream."""

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError(f"bus width must be positive, got {width}")
        self.width = width
        self._mask = mask(width)

    @abc.abstractmethod
    def reset(self) -> None:
        """Return the decoder to its power-up state."""

    @abc.abstractmethod
    def decode(self, word: EncodedWord, sel: int = SEL_INSTRUCTION) -> int:
        """Decode one bus word; advances the decoder by one clock cycle."""

    def step(
        self, state: CodecState, word: EncodedWord, sel: int = SEL_INSTRUCTION
    ) -> Tuple[CodecState, int]:
        """Pure-functional single-cycle advance: ``state -> (state', address)``."""
        self.restore_state(state)
        address = self.decode(word, sel)
        return self.snapshot_state(), address

    def step_stream(
        self,
        state: CodecState,
        words: Sequence[EncodedWord],
        sels: Optional[Sequence[int]] = None,
    ) -> Tuple[CodecState, List[int]]:
        """Decode a chunk starting from ``state`` (see the encoder mirror)."""
        if sels is not None:
            words, sels = _paired_streams(words, sels, "words", "sels")
        self.restore_state(state)
        if sels is None:
            decoded = [self.decode(word) for word in words]
        else:
            decoded = [self.decode(word, sel) for word, sel in zip(words, sels)]
        return self.snapshot_state(), decoded

    def decode_stream(
        self, words: Iterable[EncodedWord], sels: Optional[Iterable[int]] = None
    ) -> List[int]:
        """Decode a whole stream (resets first)."""
        self.reset()
        if sels is None:
            return [self.decode(word) for word in words]
        words, sels = _paired_streams(words, sels, "words", "sels")
        return [self.decode(word, sel) for word, sel in zip(words, sels)]


@dataclass
class Codec:
    """A named encoder/decoder pair factory.

    ``make_encoder()`` / ``make_decoder()`` build fresh, reset instances so a
    single :class:`Codec` can serve many streams concurrently.
    """

    name: str
    width: int
    encoder_factory: Callable[[], BusEncoder]
    decoder_factory: Callable[[], BusDecoder]
    params: Dict[str, object] = field(default_factory=dict)
    encoder_cls: Optional[type] = None
    _extra_lines_cache: Optional[Tuple[str, ...]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def make_encoder(self) -> BusEncoder:
        return self.encoder_factory()

    def make_decoder(self) -> BusDecoder:
        return self.decoder_factory()

    @property
    def extra_lines(self) -> Tuple[str, ...]:
        """Redundant line names added by this code (empty for irredundant codes).

        Read from the encoder *class* attribute when the class declares one;
        codes whose redundant-line count depends on construction parameters
        (e.g. partitioned bus-invert) set ``extra_lines`` per instance, so
        for those one encoder is built once and the answer cached — not
        rebuilt on every property access.
        """
        if self._extra_lines_cache is not None:
            return self._extra_lines_cache
        lines: Optional[Tuple[str, ...]] = None
        if self.encoder_cls is not None:
            for klass in type.mro(self.encoder_cls):
                if klass is BusEncoder:
                    # The base default () would shadow per-instance
                    # extra_lines (partitioned bus-invert); probe instead.
                    break
                declared = klass.__dict__.get("extra_lines")
                if isinstance(declared, tuple):
                    lines = declared
                    break
        if lines is None:
            lines = tuple(self.make_encoder().extra_lines)
        self._extra_lines_cache = lines
        return lines

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extras = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"Codec({self.name!r}, width={self.width}{', ' + extras if extras else ''})"


def _sized(stream: Optional[Iterable[Any]]) -> Any:
    """Materialize a stream once so its length can be read for the span.

    The encoder/decoder methods accept arbitrary iterables, but the obs
    span wants ``len()`` up front — a generator input must be drained
    here (exactly once), not crash on the length call.
    """
    if stream is None or hasattr(stream, "__len__"):
        return stream
    return list(stream)


def encode_stream(
    codec: Codec,
    addresses: Iterable[int],
    sels: Optional[Iterable[int]] = None,
) -> List[EncodedWord]:
    """Encode ``addresses`` with a fresh encoder from ``codec``."""
    addresses = _sized(addresses)
    sels = _sized(sels)
    with obs_span("encode", codec=codec.name, cycles=len(addresses)):
        words = codec.make_encoder().encode_stream(addresses, sels)
    obs_metrics.counter("core.encoded_words", codec=codec.name).inc(len(words))
    return words


def decode_stream(
    codec: Codec,
    words: Iterable[EncodedWord],
    sels: Optional[Iterable[int]] = None,
) -> List[int]:
    """Decode ``words`` with a fresh decoder from ``codec``."""
    words = _sized(words)
    sels = _sized(sels)
    with obs_span("decode", codec=codec.name, cycles=len(words)):
        decoded = codec.make_decoder().decode_stream(words, sels)
    obs_metrics.counter("core.decoded_words", codec=codec.name).inc(len(decoded))
    return decoded


def verify_roundtrip(
    codec: Codec,
    addresses: Sequence[int],
    sels: Optional[Sequence[int]] = None,
) -> List[EncodedWord]:
    """Encode ``addresses`` and verify the decoder recovers them exactly.

    Returns the encoded words; raises :class:`RoundTripError` on the first
    mismatch.  This is the correctness gate every code must pass — a bus code
    that loses addresses saves power by breaking the machine.
    """
    words = encode_stream(codec, addresses, sels)
    decoded = decode_stream(codec, words, sels)
    for index, (expected, actual) in enumerate(zip(addresses, decoded)):
        if expected != actual:
            raise RoundTripError(codec.name, index, expected, actual)
    return words


class RoundTripError(AssertionError):
    """Raised when decode(encode(stream)) does not reproduce the stream."""

    def __init__(self, codec_name: str, index: int, expected: int, actual: int):
        super().__init__(
            f"codec {codec_name!r} corrupted address #{index}: "
            f"expected {expected:#x}, decoded {actual:#x}"
        )
        self.codec_name = codec_name
        self.index = index
        self.expected = expected
        self.actual = actual
