"""T0 encoding — asymptotic zero-transition code (paper Section 2.2).

One redundant line ``INC`` tells the receiver that the new address is the
previous address plus the stride ``S`` (a power of two reflecting the
machine's addressability; 4 for a byte-addressed 32-bit-instruction MIPS).
When ``INC`` is asserted the address lines are *frozen* at their previous
value — zero transitions — and the receiver computes ``b(t-1) + S`` locally.
Out-of-sequence addresses travel in plain binary with ``INC`` low.

On an unlimited stream of consecutive addresses the bus never switches
(``INC`` stays high), hence "asymptotic zero-transition": strictly better
than Gray's one transition per address.

Paper Equations 3 (encoder) and 4 (decoder).
"""

from __future__ import annotations

from repro.core.base import BusDecoder, BusEncoder, SEL_INSTRUCTION
from repro.core.word import EncodedWord


def check_stride(stride: int) -> int:
    """Validate the T0-family stride: a positive power of two."""
    if stride < 1 or (stride & (stride - 1)) != 0:
        raise ValueError(f"stride must be a positive power of two, got {stride}")
    return stride


class T0Encoder(BusEncoder):
    """T0 encoder (paper Equation 3)."""

    extra_lines = ("INC",)

    def __init__(self, width: int, stride: int = 4):
        super().__init__(width)
        self.stride = check_stride(stride)
        self.reset()

    def reset(self) -> None:
        # Power-up: no previous address, bus lines at zero, INC low.  The
        # first address can therefore never be flagged in-sequence.
        self._prev_address: int | None = None
        self._prev_bus = 0

    def encode(self, address: int, sel: int = SEL_INSTRUCTION) -> EncodedWord:
        address = self._check_address(address)
        in_sequence = (
            self._prev_address is not None
            and address == (self._prev_address + self.stride) & self._mask
        )
        if in_sequence:
            bus = self._prev_bus  # frozen — zero transitions on address lines
            inc = 1
        else:
            bus = address
            inc = 0
        self._prev_address = address
        self._prev_bus = bus
        return EncodedWord(bus, (inc,))


class T0Decoder(BusDecoder):
    """T0 decoder (paper Equation 4)."""

    def __init__(self, width: int, stride: int = 4):
        super().__init__(width)
        self.stride = check_stride(stride)
        self.reset()

    def reset(self) -> None:
        self._prev_address: int | None = None

    def decode(self, word: EncodedWord, sel: int = SEL_INSTRUCTION) -> int:
        (inc,) = word.extras
        if inc:
            if self._prev_address is None:
                raise ValueError("INC asserted on the first bus cycle")
            address = (self._prev_address + self.stride) & self._mask
        else:
            address = word.bus & self._mask
        self._prev_address = address
        return address
