"""Codec registry: build any of the implemented codes by name.

``make_codec(name, width, **params)`` is the package's main factory.  Names:

=============  ==========================================================
``binary``     plain binary (the savings baseline)
``gray``       Gray code, ``stride`` selects the byte-addressable variant
``bus-invert`` Stan & Burleson bus-invert
``t0``         T0 asymptotic zero-transition code, parametric ``stride``
``t0bi``       T0 + bus-invert mixed code (paper Section 3.1)
``dualt0``     SEL-gated T0 for multiplexed buses (Section 3.2)
``dualt0bi``   SEL-gated T0 + bus-invert, shared INCV line (Section 3.3)
``pbi``        partitioned bus-invert, one INV wire per sub-bus (extension)
``mtf``        adaptive self-organizing sector list, one HIT wire (extension)
``offset``     irredundant modular-difference code (extension)
``inc-xor``    irredundant transition-signalled prediction XOR (extension)
``wze``        simplified working-zone encoding (extension)
``beach``      Beach-style trained code — pass ``training`` addresses
=============  ==========================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.core.base import Codec
from repro.core.beach import BeachDecoder, BeachEncoder, train_beach_code
from repro.core.binary import BinaryDecoder, BinaryEncoder
from repro.core.businvert import BusInvertDecoder, BusInvertEncoder
from repro.core.dualt0 import DualT0Decoder, DualT0Encoder
from repro.core.dualt0bi import DualT0BIDecoder, DualT0BIEncoder
from repro.core.gray import GrayDecoder, GrayEncoder
from repro.core.mtf import MtfDecoder, MtfEncoder
from repro.core.partitioned import (
    PartitionedBusInvertDecoder,
    PartitionedBusInvertEncoder,
)
from repro.core.t0 import T0Decoder, T0Encoder
from repro.core.t0bi import T0BIDecoder, T0BIEncoder
from repro.core.wze import WorkingZoneDecoder, WorkingZoneEncoder
from repro.core.xor import (
    IncXorDecoder,
    IncXorEncoder,
    OffsetDecoder,
    OffsetEncoder,
)

CodecBuilder = Callable[..., Codec]

_REGISTRY: Dict[str, CodecBuilder] = {}


def register_codec(name: str) -> Callable[[CodecBuilder], CodecBuilder]:
    """Decorator adding a codec builder to the registry."""

    def decorator(builder: CodecBuilder) -> CodecBuilder:
        if name in _REGISTRY:
            raise ValueError(f"codec {name!r} registered twice")
        _REGISTRY[name] = builder
        return builder

    return decorator


def available_codecs() -> List[str]:
    """Sorted names of all registered codecs."""
    return sorted(_REGISTRY)


def make_codec(name: str, width: int = 32, **params: object) -> Codec:
    """Build a fresh :class:`~repro.core.base.Codec` by registry name."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_codecs())
        raise KeyError(f"unknown codec {name!r}; available: {known}") from None
    return builder(width=width, **params)


@register_codec("binary")
def _binary(width: int) -> Codec:
    return Codec(
        name="binary",
        width=width,
        encoder_factory=lambda: BinaryEncoder(width),
        decoder_factory=lambda: BinaryDecoder(width),
        encoder_cls=BinaryEncoder,
    )


@register_codec("gray")
def _gray(width: int, stride: int = 1) -> Codec:
    return Codec(
        name="gray",
        width=width,
        encoder_factory=lambda: GrayEncoder(width, stride),
        decoder_factory=lambda: GrayDecoder(width, stride),
        encoder_cls=GrayEncoder,
        params={"stride": stride},
    )


@register_codec("bus-invert")
def _bus_invert(width: int) -> Codec:
    return Codec(
        name="bus-invert",
        width=width,
        encoder_factory=lambda: BusInvertEncoder(width),
        decoder_factory=lambda: BusInvertDecoder(width),
        encoder_cls=BusInvertEncoder,
    )


@register_codec("t0")
def _t0(width: int, stride: int = 4) -> Codec:
    return Codec(
        name="t0",
        width=width,
        encoder_factory=lambda: T0Encoder(width, stride),
        decoder_factory=lambda: T0Decoder(width, stride),
        encoder_cls=T0Encoder,
        params={"stride": stride},
    )


@register_codec("t0bi")
def _t0bi(width: int, stride: int = 4) -> Codec:
    return Codec(
        name="t0bi",
        width=width,
        encoder_factory=lambda: T0BIEncoder(width, stride),
        decoder_factory=lambda: T0BIDecoder(width, stride),
        encoder_cls=T0BIEncoder,
        params={"stride": stride},
    )


@register_codec("dualt0")
def _dualt0(width: int, stride: int = 4) -> Codec:
    return Codec(
        name="dualt0",
        width=width,
        encoder_factory=lambda: DualT0Encoder(width, stride),
        decoder_factory=lambda: DualT0Decoder(width, stride),
        encoder_cls=DualT0Encoder,
        params={"stride": stride},
    )


@register_codec("dualt0bi")
def _dualt0bi(width: int, stride: int = 4) -> Codec:
    return Codec(
        name="dualt0bi",
        width=width,
        encoder_factory=lambda: DualT0BIEncoder(width, stride),
        decoder_factory=lambda: DualT0BIDecoder(width, stride),
        encoder_cls=DualT0BIEncoder,
        params={"stride": stride},
    )


@register_codec("mtf")
def _mtf(width: int, offset_bits: int = 12, sectors: int = 8) -> Codec:
    return Codec(
        name="mtf",
        width=width,
        encoder_factory=lambda: MtfEncoder(width, offset_bits, sectors),
        decoder_factory=lambda: MtfDecoder(width, offset_bits, sectors),
        encoder_cls=MtfEncoder,
        params={"offset_bits": offset_bits, "sectors": sectors},
    )


@register_codec("pbi")
def _partitioned_bus_invert(width: int, partitions: int = 4) -> Codec:
    return Codec(
        name="pbi",
        width=width,
        encoder_factory=lambda: PartitionedBusInvertEncoder(width, partitions),
        decoder_factory=lambda: PartitionedBusInvertDecoder(width, partitions),
        encoder_cls=PartitionedBusInvertEncoder,
        params={"partitions": partitions},
    )


@register_codec("offset")
def _offset(width: int) -> Codec:
    return Codec(
        name="offset",
        width=width,
        encoder_factory=lambda: OffsetEncoder(width),
        decoder_factory=lambda: OffsetDecoder(width),
        encoder_cls=OffsetEncoder,
    )


@register_codec("inc-xor")
def _inc_xor(width: int, stride: int = 4) -> Codec:
    return Codec(
        name="inc-xor",
        width=width,
        encoder_factory=lambda: IncXorEncoder(width, stride),
        decoder_factory=lambda: IncXorDecoder(width, stride),
        encoder_cls=IncXorEncoder,
        params={"stride": stride},
    )


@register_codec("wze")
def _wze(width: int, zones: int = 4, stride: int = 4) -> Codec:
    return Codec(
        name="wze",
        width=width,
        encoder_factory=lambda: WorkingZoneEncoder(width, zones, stride),
        decoder_factory=lambda: WorkingZoneDecoder(width, zones, stride),
        encoder_cls=WorkingZoneEncoder,
        params={"zones": zones, "stride": stride},
    )


@register_codec("beach")
def _beach(
    width: int,
    training: Sequence[int] = (),
    cluster_size: int = 4,
    seed: int = 0,
) -> Codec:
    if len(training) < 2:
        raise ValueError(
            "the beach codec is stream-adaptive: pass training=<address list>"
        )
    code = train_beach_code(
        training, width=width, cluster_size=cluster_size, seed=seed
    )
    return Codec(
        name="beach",
        width=width,
        encoder_factory=lambda: BeachEncoder(width, code),
        decoder_factory=lambda: BeachDecoder(width, code),
        encoder_cls=BeachEncoder,
        params={"cluster_size": cluster_size, "seed": seed},
    )
