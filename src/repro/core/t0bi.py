"""T0_BI encoding — the paper's first mixed code (Section 3.1).

Combines T0 and bus-invert for architectures with a single (e.g. unified-L2)
address bus.  Two redundant lines, ``INC`` and ``INV``:

1. in-sequence address        → bus frozen, ``INC=1, INV=0``;
2. otherwise, ``H <= (N+2)/2`` → plain binary, ``INC=0, INV=0``;
3. otherwise                   → complemented binary, ``INC=0, INV=1``,

where ``H`` is the Hamming distance between the previous encoded word
(address lines + ``INC`` + ``INV``, i.e. ``N + 2`` wires) and the candidate
``address | 0 | 0``.  Paper Equations 6 (encoder) and 7 (decoder).
"""

from __future__ import annotations

from repro.core.base import BusDecoder, BusEncoder, SEL_INSTRUCTION
from repro.core.t0 import check_stride
from repro.core.word import EncodedWord, hamming


class T0BIEncoder(BusEncoder):
    """T0_BI encoder (paper Equation 6)."""

    extra_lines = ("INC", "INV")

    def __init__(self, width: int, stride: int = 4):
        super().__init__(width)
        self.stride = check_stride(stride)
        self.reset()

    def reset(self) -> None:
        self._prev_address: int | None = None
        self._prev_bus = 0
        self._prev_inc = 0
        self._prev_inv = 0

    def encode(self, address: int, sel: int = SEL_INSTRUCTION) -> EncodedWord:
        address = self._check_address(address)
        in_sequence = (
            self._prev_address is not None
            and address == (self._prev_address + self.stride) & self._mask
        )
        if in_sequence:
            bus, inc, inv = self._prev_bus, 1, 0
        else:
            # H over N + 2 wires, candidate INC/INV both 0 (Equation 6).
            distance = (
                hamming(self._prev_bus, address) + self._prev_inc + self._prev_inv
            )
            if 2 * distance > self.width + 2:  # H > (N + 2) / 2
                bus, inc, inv = ~address & self._mask, 0, 1
            else:
                bus, inc, inv = address, 0, 0
        self._prev_address = address
        self._prev_bus = bus
        self._prev_inc = inc
        self._prev_inv = inv
        return EncodedWord(bus, (inc, inv))


class T0BIDecoder(BusDecoder):
    """T0_BI decoder (paper Equation 7)."""

    def __init__(self, width: int, stride: int = 4):
        super().__init__(width)
        self.stride = check_stride(stride)
        self.reset()

    def reset(self) -> None:
        self._prev_address: int | None = None

    def decode(self, word: EncodedWord, sel: int = SEL_INSTRUCTION) -> int:
        inc, inv = word.extras
        if inc:
            if self._prev_address is None:
                raise ValueError("INC asserted on the first bus cycle")
            address = (self._prev_address + self.stride) & self._mask
        elif inv:
            address = ~word.bus & self._mask
        else:
            address = word.bus & self._mask
        self._prev_address = address
        return address
