"""Working-zone encoding (Musoll/Lang/Cortadella), simplified.

A contemporary of the paper's codes, included as an extra baseline for the
hierarchy/extension studies.  The observation is that programs reference a
few *working zones* (code, stack, one or two heap objects); an address that
falls near a recently used zone can be transmitted as a tiny offset instead
of a full word.

Simplified scheme implemented here (documented deviations from the original:
forward-only sliding windows, zone id implied by the toggled line's position
instead of dedicated id lines):

* ``zones`` zone registers, LRU-replaced, each owning ``N // zones``
  consecutive bus lines ("slots");
* **hit** (address within ``slots`` forward strides of a zone register):
  assert the redundant ``WZ`` line and toggle exactly one bus line — the
  owner zone's slot corresponding to the stride offset; the zone register
  then slides to the new address.  Cost: at most 2 wire transitions.
* **miss**: de-assert ``WZ``, transmit plain binary, load the LRU zone
  register with the new address.

The decoder keeps mirror registers, recovers the offset from the single
toggled line and stays in lock-step.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.base import BusDecoder, BusEncoder, SEL_INSTRUCTION
from repro.core.t0 import check_stride
from repro.core.word import EncodedWord


class _ZoneState:
    """Shared encoder/decoder bookkeeping for the working-zone registers."""

    def __init__(self, width: int, zones: int, stride: int):
        if zones < 1:
            raise ValueError(f"zones must be >= 1, got {zones}")
        if width // zones < 1:
            raise ValueError(
                f"bus width {width} cannot host {zones} zones of >= 1 slot"
            )
        self.width = width
        self.zones = zones
        self.stride = stride
        self.slots = width // zones
        self.reset()

    def reset(self) -> None:
        self.registers: List[Optional[int]] = [None] * self.zones
        self.lru: List[int] = list(range(self.zones))  # front = LRU

    def find_hit(self, address: int) -> Optional[tuple]:
        """Return ``(zone, offset_index)`` if the address hits a zone window."""
        for zone, base in enumerate(self.registers):
            if base is None:
                continue
            delta = address - base
            if delta < 0 or delta % self.stride != 0:
                continue
            offset_index = delta // self.stride
            if offset_index < self.slots:
                return zone, offset_index
        return None

    def touch(self, zone: int, address: int) -> None:
        """Slide a zone register and mark it most recently used."""
        self.registers[zone] = address
        self.lru.remove(zone)
        self.lru.append(zone)

    def replace_lru(self, address: int) -> int:
        """Load the least recently used zone with a missed address."""
        zone = self.lru.pop(0)
        self.registers[zone] = address
        self.lru.append(zone)
        return zone


class WorkingZoneEncoder(BusEncoder):
    """Simplified working-zone encoder (one redundant ``WZ`` line)."""

    extra_lines = ("WZ",)

    def __init__(self, width: int, zones: int = 4, stride: int = 4):
        super().__init__(width)
        self.stride = check_stride(stride)
        self._state = _ZoneState(width, zones, self.stride)
        self.reset()

    @property
    def zones(self) -> int:
        return self._state.zones

    def reset(self) -> None:
        self._state.reset()
        self._prev_bus = 0

    def encode(self, address: int, sel: int = SEL_INSTRUCTION) -> EncodedWord:
        address = self._check_address(address)
        hit = self._state.find_hit(address)
        if hit is not None:
            zone, offset_index = hit
            line = zone * self._state.slots + offset_index
            bus = self._prev_bus ^ (1 << line)
            self._state.touch(zone, address)
            wz = 1
        else:
            bus = address
            self._state.replace_lru(address)
            wz = 0
        self._prev_bus = bus
        return EncodedWord(bus, (wz,))


class WorkingZoneDecoder(BusDecoder):
    """Mirror-register decoder for :class:`WorkingZoneEncoder`."""

    def __init__(self, width: int, zones: int = 4, stride: int = 4):
        super().__init__(width)
        self.stride = check_stride(stride)
        self._state = _ZoneState(width, zones, self.stride)
        self.reset()

    def reset(self) -> None:
        self._state.reset()
        self._prev_bus = 0

    def decode(self, word: EncodedWord, sel: int = SEL_INSTRUCTION) -> int:
        (wz,) = word.extras
        if wz:
            diff = word.bus ^ self._prev_bus
            if diff.bit_count() != 1:
                raise ValueError(
                    f"working-zone hit must toggle exactly one line, got {diff:#x}"
                )
            line = diff.bit_length() - 1
            zone, offset_index = divmod(line, self._state.slots)
            base = self._state.registers[zone]
            if base is None:
                raise ValueError(f"hit on uninitialised zone {zone}")
            address = base + offset_index * self.stride
            self._state.touch(zone, address)
        else:
            address = word.bus & self._mask
            self._state.replace_lru(address)
        self._prev_bus = word.bus
        return address
