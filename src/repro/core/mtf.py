"""Adaptive sector encoding with a self-organizing (move-to-front) list.

A descendant of the paper's codes from the follow-up literature
(Mamidipaka/Hirschberg/Dutt, *Adaptive Low-Power Address Encoding Techniques
Using Self-Organizing Lists*): both ends of the bus maintain an *identical*
move-to-front list of recently used address **sectors** (high-order parts).
When an address hits a listed sector, only its short list index plus the
low-order offset travel on the bus — the remaining lines freeze; a miss
transmits the plain address and both sides insert the new sector at the
front of their lists.

One redundant wire ``HIT`` disambiguates the two word formats:

* ``HIT=1``: bus = ``[index : index_bits][offset : offset_bits][frozen…]``
* ``HIT=0``: bus = plain binary address (sector inserted at list front)

The list update is deterministic, so encoder and decoder stay in lock-step
with no side channel — the same discipline as the T0 family's registers.
Sector traffic (code / stack / heap ping-pong) costs a couple of wires per
access instead of a dozen.
"""

from __future__ import annotations

from typing import List

from repro.core.base import BusDecoder, BusEncoder, SEL_INSTRUCTION
from repro.core.gray import binary_to_gray, gray_to_binary
from repro.core.word import EncodedWord, mask


class _SectorList:
    """The shared move-to-front bookkeeping."""

    def __init__(self, capacity: int):
        if capacity < 2 or capacity & (capacity - 1):
            raise ValueError(
                f"sector list capacity must be a power of two >= 2, got {capacity}"
            )
        self.capacity = capacity
        self.sectors: List[int] = []

    def find(self, sector: int) -> int:
        """List index of ``sector`` or -1."""
        try:
            return self.sectors.index(sector)
        except ValueError:
            return -1

    def touch(self, index: int) -> None:
        """Move the hit entry to the front."""
        self.sectors.insert(0, self.sectors.pop(index))

    def insert(self, sector: int) -> None:
        """Insert a missed sector at the front, evicting the tail."""
        self.sectors.insert(0, sector)
        if len(self.sectors) > self.capacity:
            self.sectors.pop()


class MtfEncoder(BusEncoder):
    """Self-organizing sector-list encoder."""

    extra_lines = ("HIT",)

    def __init__(self, width: int, offset_bits: int = 12, sectors: int = 8):
        super().__init__(width)
        self._index_bits = (sectors - 1).bit_length() if sectors > 1 else 1
        if offset_bits + self._index_bits >= width:
            raise ValueError(
                f"offset_bits {offset_bits} + index bits {self._index_bits} "
                f"must leave sector bits on a {width}-bit bus"
            )
        self.offset_bits = offset_bits
        self.sectors = sectors
        self._list = _SectorList(sectors)
        self.reset()

    def reset(self) -> None:
        self._list = _SectorList(self.sectors)
        self._prev_bus = 0

    def encode(self, address: int, sel: int = SEL_INSTRUCTION) -> EncodedWord:
        address = self._check_address(address)
        sector = address >> self.offset_bits
        offset = address & mask(self.offset_bits)
        index = self._list.find(sector)
        if index >= 0:
            # Hit: gray-coded index + raw offset on the low lines; freeze
            # everything above them at the previous bus value.
            payload_bits = self.offset_bits + self._index_bits
            payload = (binary_to_gray(index) << self.offset_bits) | offset
            bus = (self._prev_bus & ~mask(payload_bits)) | payload
            hit = 1
            self._list.touch(index)
        else:
            bus = address
            hit = 0
            self._list.insert(sector)
        self._prev_bus = bus
        return EncodedWord(bus & self._mask, (hit,))


class MtfDecoder(BusDecoder):
    """Mirror decoder for :class:`MtfEncoder`."""

    def __init__(self, width: int, offset_bits: int = 12, sectors: int = 8):
        super().__init__(width)
        self._index_bits = (sectors - 1).bit_length() if sectors > 1 else 1
        self.offset_bits = offset_bits
        self.sectors = sectors
        self.reset()

    def reset(self) -> None:
        self._list = _SectorList(self.sectors)

    def decode(self, word: EncodedWord, sel: int = SEL_INSTRUCTION) -> int:
        (hit,) = word.extras
        if hit:
            offset = word.bus & mask(self.offset_bits)
            index = gray_to_binary(
                (word.bus >> self.offset_bits) & mask(self._index_bits)
            )
            if index >= len(self._list.sectors):
                raise ValueError(
                    f"HIT with out-of-range sector index {index} "
                    f"(list holds {len(self._list.sectors)})"
                )
            sector = self._list.sectors[index]
            self._list.touch(index)
            return ((sector << self.offset_bits) | offset) & self._mask
        address = word.bus & self._mask
        self._list.insert(address >> self.offset_bits)
        return address
