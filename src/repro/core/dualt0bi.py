"""Dual T0_BI encoding — the paper's headline code (Section 3.3).

The winner on multiplexed buses (22.25 % average savings over binary in
Table 7).  One shared redundant line ``INCV`` plays a double role, which the
receiver disambiguates with the already-present ``SEL`` wire:

* instruction slot in sequence (``SEL=1``) → bus frozen, ``INCV=1``
  (T0 behaviour against the held instruction-address reference register);
* data slot with Hamming distance ``H > N/2`` (``SEL=0``) → complemented
  binary, ``INCV=1`` (bus-invert behaviour);
* everything else → plain binary, ``INCV=0``.

``H`` is measured over the ``N + 1`` wires ``B | INCV`` exactly as in plain
bus-invert.  Paper Equations 11 (encoder) and 12 (decoder); the second branch
of Equation 12 is printed with a typo in the original (``SEL=1`` twice) — the
inversion branch is of course the ``SEL=0`` one.
"""

from __future__ import annotations

from repro.core.base import BusDecoder, BusEncoder, SEL_INSTRUCTION
from repro.core.t0 import check_stride
from repro.core.word import EncodedWord, hamming


class DualT0BIEncoder(BusEncoder):
    """Dual T0_BI encoder (paper Equation 11)."""

    extra_lines = ("INCV",)

    def __init__(self, width: int, stride: int = 4):
        super().__init__(width)
        self.stride = check_stride(stride)
        self.reset()

    def reset(self) -> None:
        self._ref_address: int | None = None  # held instruction-address register
        self._prev_bus = 0
        self._prev_incv = 0

    def encode(self, address: int, sel: int = SEL_INSTRUCTION) -> EncodedWord:
        address = self._check_address(address)
        if (
            sel == SEL_INSTRUCTION
            and self._ref_address is not None
            and address == (self._ref_address + self.stride) & self._mask
        ):
            bus, incv = self._prev_bus, 1
        elif sel != SEL_INSTRUCTION:
            # Data slot: bus-invert decision over N + 1 wires (B | INCV).
            distance = hamming(self._prev_bus, address) + self._prev_incv
            if 2 * distance > self.width:  # H > N/2
                bus, incv = ~address & self._mask, 1
            else:
                bus, incv = address, 0
        else:
            bus, incv = address, 0
        if sel == SEL_INSTRUCTION:
            self._ref_address = address
        self._prev_bus = bus
        self._prev_incv = incv
        return EncodedWord(bus, (incv,))


class DualT0BIDecoder(BusDecoder):
    """Dual T0_BI decoder (paper Equation 12, typo corrected)."""

    def __init__(self, width: int, stride: int = 4):
        super().__init__(width)
        self.stride = check_stride(stride)
        self.reset()

    def reset(self) -> None:
        self._ref_address: int | None = None

    def decode(self, word: EncodedWord, sel: int = SEL_INSTRUCTION) -> int:
        (incv,) = word.extras
        if incv and sel == SEL_INSTRUCTION:
            if self._ref_address is None:
                raise ValueError("INCV asserted before any instruction slot")
            address = (self._ref_address + self.stride) & self._mask
        elif incv:
            address = ~word.bus & self._mask
        else:
            address = word.bus & self._mask
        if sel == SEL_INSTRUCTION:
            self._ref_address = address
        return address
