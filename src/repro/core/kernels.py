"""Columnar numpy encode/decode kernels for the registered codecs.

The steppable API in :mod:`repro.core.base` is the *reference*
implementation: one Python-level ``encode``/``decode`` call per bus cycle,
one :class:`~repro.core.word.EncodedWord` per cycle.  That is the right
shape for formal word-level reasoning and for chunked state handoff, but
it is the wrong shape for million-address traces — the engine's cold path
spends essentially all of its time in per-cycle Python dispatch.

These kernels compute the same streams as whole-array operations on a
uint64 vector: each cycle's wires are packed exactly like
:meth:`EncodedWord.packed` (redundant lines above the ``width`` bus bits),
so Hamming distance between consecutive packed words is the number of
toggling wires and a :class:`~repro.metrics.transitions.TransitionReport`
falls out of the same bit-plane machinery :mod:`repro.metrics.fast` uses.

Two facts make the paper's codes vectorizable despite their statefulness:

* The T0 family freezes the bus during in-sequence runs, so the bus value
  at any cycle is the value at the most recent *setter* (non-frozen)
  cycle — a gather through a running-maximum index, not a scan.
* The bus-invert family's INV/INCV line obeys the two-valued recurrence
  ``x[t] = b[t] if x[t-1] else a[t]`` with data-independent ``a``/``b``
  per cycle, which has a closed form: positions with ``a == b`` force the
  value, and between forced positions the value either copies or toggles,
  so a cumulative toggle parity settles every cycle at once
  (:func:`_binary_recurrence`).

Kernels exist for every registered codec except the table-driven ones
(``mtf``, ``wze``, ``beach``), whose per-cycle data-dependent table state
has no closed form; callers must treat :func:`has_encode_kernel` /
:func:`has_decode_kernel` as the capability test and fall back to the
reference path (the engine and ``compare_codecs`` do exactly that).
Kernels also require all wires to fit one uint64, i.e.
``width + len(extra_lines) <= 64`` — the same packing limit
:func:`repro.metrics.fast.pack_words` enforces.

Bit-identity with the reference path — including the power-up conventions
and the exact validation errors — is locked by ``tests/test_kernels.py``
over every kernel codec, width and sel pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.base import SEL_INSTRUCTION, Codec
from repro.core.partitioned import partition_bounds
from repro.core.t0 import check_stride
from repro.core.word import EncodedWord
from repro.metrics.fast import _as_u64, _popcount
from repro.metrics.transitions import TransitionReport
from repro.obs import metrics as obs_metrics

ArrayLike = Union[Sequence[int], np.ndarray]

_ONE = np.uint64(1)


def _u64_mask(width: int) -> np.uint64:
    return np.uint64((1 << width) - 1) if width < 64 else ~np.uint64(0)


def _hold_indices(setter: np.ndarray) -> np.ndarray:
    """For each position, the index of the most recent True in ``setter``.

    ``setter[0]`` must be True (every kernel's cycle 0 is a setter: the
    power-up state admits no frozen first cycle).
    """
    n = setter.size
    return np.maximum.accumulate(np.where(setter, np.arange(n), 0))


def _binary_recurrence(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``x[t] = b[t] if x[t-1] else a[t]`` with ``x[-1] = False``.

    ``a``/``b`` are boolean arrays (the cycle's outcome under a previous
    value of 0 resp. 1).  Where ``a == b`` the outcome is forced; between
    forced positions the step either copies the previous value
    (``a=False, b=True``) or toggles it (``a=True, b=False``), so each
    position is the last forced value XOR the parity of the toggles since
    — all computable in one pass.
    """
    n = a.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    forced = a == b
    toggle = a & ~b
    index = np.arange(n)
    last_forced = np.maximum.accumulate(np.where(forced, index, -1))
    prefix = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(toggle, dtype=np.int64)]
    )
    flips = prefix[index + 1] - prefix[last_forced + 1]
    base = np.where(last_forced >= 0, a[np.maximum(last_forced, 0)], False)
    return base ^ (flips & 1).astype(bool)


def _prepended(array: np.ndarray, first: int = 0) -> np.ndarray:
    """``array`` shifted right by one cycle, with ``first`` at cycle 0."""
    if array.size == 0:
        return array.copy()
    out = np.empty_like(array)
    out[0] = first
    out[1:] = array[:-1]
    return out


def _stride_of(codec: Codec, default: int = 4) -> np.uint64:
    value = codec.params.get("stride", default)
    return np.uint64(check_stride(int(value)))  # type: ignore[arg-type]


def _in_sequence(
    a: np.ndarray, stride: np.uint64, m: np.uint64
) -> np.ndarray:
    """``a[t] == (a[t-1] + stride) & mask`` with cycle 0 never in sequence."""
    flags = np.zeros(a.size, dtype=bool)
    if a.size > 1:
        flags[1:] = a[1:] == ((a[:-1] + stride) & m)
    return flags


def _instruction_flags(
    sels: Optional[np.ndarray], n: int
) -> np.ndarray:
    if sels is None:
        return np.ones(n, dtype=bool)
    return sels == SEL_INSTRUCTION


# ---------------------------------------------------------------------------
# Encode kernels: (codec, addresses-u64, sels-or-None) -> packed-u64
# ---------------------------------------------------------------------------


def _encode_binary(
    codec: Codec, a: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    return a.copy()


def _encode_gray(
    codec: Codec, a: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    stride = int(codec.params.get("stride", 1))
    if stride < 1 or (stride & (stride - 1)) != 0:
        raise ValueError(f"stride must be a power of two, got {stride}")
    offset_bits = np.uint64(stride.bit_length() - 1)
    offset_mask = np.uint64(stride - 1)
    m = _u64_mask(codec.width)
    word_part = a >> offset_bits
    coded = (word_part ^ (word_part >> _ONE)) << offset_bits
    return (coded | (a & offset_mask)) & m


def _encode_businvert(
    codec: Codec, a: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    width = codec.width
    m = _u64_mask(width)
    # h[t] = Hamming(a[t-1], a[t]); the power-up bus is all zeros so the
    # first cycle measures against a virtual previous address of 0.
    h = _popcount(a ^ _prepended(a))
    # INV recurrence over the previous cycle's INV: the candidate distance
    # is h + prev_inv when the previous word was uninverted, and
    # (width - h) + prev_inv when it was inverted (XOR against ~a[t-1]).
    invert_if_low = 2 * h > width
    invert_if_high = 2 * (width - h + 1) > width
    inv = _binary_recurrence(invert_if_low, invert_if_high)
    bus = np.where(inv, ~a & m, a)
    return bus | (inv.astype(np.uint64) << np.uint64(width))


def _encode_t0(
    codec: Codec, a: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    width = codec.width
    m = _u64_mask(width)
    in_seq = _in_sequence(a, _stride_of(codec), m)
    bus = a[_hold_indices(~in_seq)]  # frozen at the last out-of-sequence bus
    return bus | (in_seq.astype(np.uint64) << np.uint64(width))


def _encode_t0bi(
    codec: Codec, a: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    width = codec.width
    m = _u64_mask(width)
    in_seq = _in_sequence(a, _stride_of(codec), m)
    # Setters are the out-of-sequence cycles: only they choose a polarity
    # and place a fresh value on the bus.  Cycle 0 is always a setter.
    setters = np.flatnonzero(~in_seq)
    sa = a[setters]
    h = _popcount(sa ^ _prepended(sa))
    # prev_inc is 1 exactly when the preceding cycle was in-sequence; in
    # that case the preceding INV was 0, and otherwise the preceding cycle
    # is the previous setter whose INV feeds the recurrence (+1 either way
    # in the inverted branch, since an inverted setter contributes its own
    # INV bit instead of the INC bit).
    gap = np.zeros(setters.size, dtype=np.int64)
    if setters.size > 1:
        gap[1:] = in_seq[setters[1:] - 1]
    invert_if_low = 2 * (h + gap) > width + 2
    invert_if_high = 2 * (width - h + 1) > width + 2
    inv_s = _binary_recurrence(invert_if_low, invert_if_high)
    bus_s = np.where(inv_s, ~sa & m, sa)
    bus_full = np.zeros(a.size, dtype=np.uint64)
    bus_full[setters] = bus_s
    inv_full = np.zeros(a.size, dtype=bool)
    inv_full[setters] = inv_s
    bus = bus_full[_hold_indices(~in_seq)]
    return (
        bus
        | (in_seq.astype(np.uint64) << np.uint64(width))
        | (inv_full.astype(np.uint64) << np.uint64(width + 1))
    )


def _dual_in_sequence(
    codec: Codec, a: np.ndarray, sels: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """(in_seq, is_inst) for the SEL-gated codes: the sequentiality test
    runs against the address of the most recent *instruction* slot."""
    m = _u64_mask(codec.width)
    stride = _stride_of(codec)
    is_inst = _instruction_flags(sels, a.size)
    index = np.arange(a.size)
    held = np.maximum.accumulate(np.where(is_inst, index, -1))
    prev_inst = _prepended(held, -1)
    has_ref = prev_inst >= 0
    ref = a[np.maximum(prev_inst, 0)]
    in_seq = is_inst & has_ref & (a == ((ref + stride) & m))
    return in_seq, is_inst


def _encode_dualt0(
    codec: Codec, a: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    in_seq, _ = _dual_in_sequence(codec, a, sels)
    bus = a[_hold_indices(~in_seq)]
    return bus | (in_seq.astype(np.uint64) << np.uint64(codec.width))


def _encode_dualt0bi(
    codec: Codec, a: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    width = codec.width
    m = _u64_mask(width)
    in_seq, is_inst = _dual_in_sequence(codec, a, sels)
    setters = np.flatnonzero(~in_seq)
    sa = a[setters]
    h = _popcount(sa ^ _prepended(sa))
    gap = np.zeros(setters.size, dtype=np.int64)
    if setters.size > 1:
        gap[1:] = in_seq[setters[1:] - 1]
    # Only data setters take the bus-invert branch; instruction setters
    # transmit plain binary with INCV=0, which forces the recurrence.
    is_data = ~is_inst[setters]
    invert_if_low = is_data & (2 * (h + gap) > width)
    invert_if_high = is_data & (2 * (width - h + 1) > width)
    incv_s = _binary_recurrence(invert_if_low, invert_if_high)
    bus_s = np.where(incv_s, ~sa & m, sa)
    bus_full = np.zeros(a.size, dtype=np.uint64)
    bus_full[setters] = bus_s
    incv_full = in_seq.copy()
    incv_full[setters] = incv_s
    bus = bus_full[_hold_indices(~in_seq)]
    return bus | (incv_full.astype(np.uint64) << np.uint64(width))


def _encode_pbi(
    codec: Codec, a: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    width = codec.width
    partitions = int(codec.params.get("partitions", 4))  # type: ignore[arg-type]
    bounds = partition_bounds(width, partitions)
    packed = np.zeros(a.size, dtype=np.uint64)
    for index, (low, size) in enumerate(bounds):
        field_mask = _u64_mask(size)
        field = (a >> np.uint64(low)) & field_mask
        h = _popcount(field ^ _prepended(field))
        invert_if_low = 2 * h > size
        invert_if_high = 2 * (size - h + 1) > size
        inv = _binary_recurrence(invert_if_low, invert_if_high)
        out = np.where(inv, ~field & field_mask, field)
        packed |= out << np.uint64(low)
        packed |= inv.astype(np.uint64) << np.uint64(width + index)
    return packed


def _encode_offset(
    codec: Codec, a: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    m = _u64_mask(codec.width)
    return (a - _prepended(a)) & m


def _encode_incxor(
    codec: Codec, a: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    m = _u64_mask(codec.width)
    stride = _stride_of(codec)
    logical = np.empty_like(a)
    if a.size:
        logical[0] = a[0]  # no prediction on the first cycle
        logical[1:] = a[1:] ^ ((a[:-1] + stride) & m)
    # bus[t] = logical[t] ^ bus[t-1]: a running XOR of the logical words.
    return np.bitwise_xor.accumulate(logical)


# ---------------------------------------------------------------------------
# Decode kernels: (codec, packed-u64, sels-or-None) -> addresses-u64
# ---------------------------------------------------------------------------


def _split_packed(
    packed: np.ndarray, width: int, extras: int
) -> Tuple[np.ndarray, List[np.ndarray]]:
    m = _u64_mask(width)
    bus = packed & m
    lines = [
        ((packed >> np.uint64(width + index)) & _ONE).astype(bool)
        for index in range(extras)
    ]
    return bus, lines


def _decode_binary(
    codec: Codec, packed: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    return packed & _u64_mask(codec.width)


def _decode_gray(
    codec: Codec, packed: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    stride = int(codec.params.get("stride", 1))
    if stride < 1 or (stride & (stride - 1)) != 0:
        raise ValueError(f"stride must be a power of two, got {stride}")
    offset_bits = np.uint64(stride.bit_length() - 1)
    offset_mask = np.uint64(stride - 1)
    m = _u64_mask(codec.width)
    coded = packed & m
    value = coded >> offset_bits
    for shift in (1, 2, 4, 8, 16, 32):  # prefix-XOR inverts the Gray map
        value = value ^ (value >> np.uint64(shift))
    return ((value << offset_bits) | (coded & offset_mask)) & m


def _decode_businvert(
    codec: Codec, packed: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    m = _u64_mask(codec.width)
    bus, (inv,) = _split_packed(packed, codec.width, 1)
    return np.where(inv, ~bus & m, bus)


def _decode_pbi(
    codec: Codec, packed: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    width = codec.width
    partitions = int(codec.params.get("partitions", 4))  # type: ignore[arg-type]
    bounds = partition_bounds(width, partitions)
    bus, invs = _split_packed(packed, width, partitions)
    address = np.zeros(packed.size, dtype=np.uint64)
    for (low, size), inv in zip(bounds, invs):
        field_mask = _u64_mask(size)
        field = (bus >> np.uint64(low)) & field_mask
        field = np.where(inv, ~field & field_mask, field)
        address |= field << np.uint64(low)
    return address


def _decode_offset(
    codec: Codec, packed: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    m = _u64_mask(codec.width)
    return np.cumsum(packed & m, dtype=np.uint64) & m


def _decode_t0(
    codec: Codec, packed: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    m = _u64_mask(codec.width)
    stride = _stride_of(codec)
    bus, (inc,) = _split_packed(packed, codec.width, 1)
    if inc.size and inc[0]:
        raise ValueError("INC asserted on the first bus cycle")
    # During an INC run the bus is frozen at the run's base address, so the
    # decoded address is base + stride * (cycles since the base).
    run = np.arange(packed.size) - _hold_indices(~inc)
    return (bus + stride * run.astype(np.uint64)) & m


def _decode_t0bi(
    codec: Codec, packed: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    m = _u64_mask(codec.width)
    stride = _stride_of(codec)
    bus, (inc, inv) = _split_packed(packed, codec.width, 2)
    if inc.size and inc[0]:
        raise ValueError("INC asserted on the first bus cycle")
    base = np.where(inv & ~inc, ~bus & m, bus)
    hold = _hold_indices(~inc)
    run = np.arange(packed.size) - hold
    return (base[hold] + stride * run.astype(np.uint64)) & m


def _dual_decode_refs(
    bus: np.ndarray,
    advance: np.ndarray,
    is_inst: np.ndarray,
    stride: np.uint64,
    m: np.uint64,
    error: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the SEL-gated reference register for the dual codes.

    ``advance`` marks the cycles decoded as "reference + stride".  The
    register is updated at every instruction slot with that slot's decoded
    address, so over the instruction subsequence it is an affine
    recurrence: a run of advancing instruction slots counts up from the
    last plainly-transmitted instruction address.  Returns the reference
    value *before* each cycle (undefined where no reference exists yet)
    and the decoded addresses of the instruction slots scattered over the
    full timeline.
    """
    n = bus.size
    index = np.arange(n)
    held = np.maximum.accumulate(np.where(is_inst, index, -1))
    prev_inst = _prepended(held, -1)
    if bool(np.any(advance & (prev_inst < 0))):
        raise ValueError(error)
    inst = np.flatnonzero(is_inst)
    inst_addr = np.zeros(n, dtype=np.uint64)
    if inst.size:
        bus_i = bus[inst]
        advance_i = advance[inst]
        hold = _hold_indices(~advance_i)
        run = (np.arange(inst.size) - hold).astype(np.uint64)
        inst_addr[inst] = (bus_i[hold] + stride * run) & m
    ref_before = inst_addr[np.maximum(prev_inst, 0)]
    return ref_before, inst_addr


def _decode_dualt0(
    codec: Codec, packed: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    m = _u64_mask(codec.width)
    stride = _stride_of(codec)
    bus, (inc,) = _split_packed(packed, codec.width, 1)
    is_inst = _instruction_flags(sels, packed.size)
    ref_before, inst_addr = _dual_decode_refs(
        bus, inc, is_inst, stride, m,
        "INC asserted before any instruction slot",
    )
    address = np.where(inc, (ref_before + stride) & m, bus)
    address[is_inst] = inst_addr[is_inst]
    return address


def _decode_dualt0bi(
    codec: Codec, packed: np.ndarray, sels: Optional[np.ndarray]
) -> np.ndarray:
    m = _u64_mask(codec.width)
    stride = _stride_of(codec)
    bus, (incv,) = _split_packed(packed, codec.width, 1)
    is_inst = _instruction_flags(sels, packed.size)
    ref_before, inst_addr = _dual_decode_refs(
        bus, incv & is_inst, is_inst, stride, m,
        "INCV asserted before any instruction slot",
    )
    # Data slots re-invert on INCV; instruction slots come from the
    # reference recurrence (plain bus when INCV is low).
    address = np.where(incv, ~bus & m, bus)
    address[is_inst] = inst_addr[is_inst]
    return address


_ENCODE_KERNELS: Dict[
    str, Callable[[Codec, np.ndarray, Optional[np.ndarray]], np.ndarray]
] = {
    "binary": _encode_binary,
    "gray": _encode_gray,
    "bus-invert": _encode_businvert,
    "t0": _encode_t0,
    "t0bi": _encode_t0bi,
    "dualt0": _encode_dualt0,
    "dualt0bi": _encode_dualt0bi,
    "pbi": _encode_pbi,
    "offset": _encode_offset,
    "inc-xor": _encode_incxor,
}

#: inc-xor has no decode kernel: its decoder mixes XOR with modular
#: addition per cycle, which has no closed-form scan.
_DECODE_KERNELS: Dict[
    str, Callable[[Codec, np.ndarray, Optional[np.ndarray]], np.ndarray]
] = {
    "binary": _decode_binary,
    "gray": _decode_gray,
    "bus-invert": _decode_businvert,
    "t0": _decode_t0,
    "t0bi": _decode_t0bi,
    "dualt0": _decode_dualt0,
    "dualt0bi": _decode_dualt0bi,
    "pbi": _decode_pbi,
    "offset": _decode_offset,
}


@dataclass(frozen=True, eq=False)
class KernelResult:
    """An encoded stream as one packed uint64 vector.

    ``packed[t]`` is exactly ``EncodedWord.packed(width)`` of cycle ``t``:
    bus bits low, redundant lines (``extra_names`` order) above them.
    """

    codec_name: str
    width: int
    extra_names: Tuple[str, ...]
    packed: np.ndarray

    @property
    def cycles(self) -> int:
        return int(self.packed.size)

    def report(self) -> TransitionReport:
        """The stream's transition report — identical to running
        :func:`repro.metrics.fast.count_transitions_fast` on the words.

        Per-line counts come from one 256-bin histogram per byte lane of
        the diff words, folded through a 256x8 bit table — eight
        ``bincount`` passes total, instead of one masked pass per wire.
        Totals are derived from the per-line counts (every toggle is a
        toggle of exactly one line), so no popcount pass remains.
        """
        if self.packed.size == 0:
            return TransitionReport(0, 0, 0, 0, ())
        diffs = self.packed[1:] ^ self.packed[:-1]
        lines = self.width + len(self.extra_names)
        lanes = diffs.astype("<u8", copy=False).view(np.uint8).reshape(-1, 8)
        bit_table = np.unpackbits(
            np.arange(256, dtype=np.uint8)[:, None], axis=1, bitorder="little"
        ).astype(np.int64)
        counts = np.empty(64, dtype=np.int64)
        for lane in range((lines + 7) // 8):
            histogram = np.bincount(
                np.ascontiguousarray(lanes[:, lane]), minlength=256
            )
            counts[8 * lane : 8 * lane + 8] = histogram @ bit_table
        per_line = tuple(int(count) for count in counts[:lines])
        total = sum(per_line)
        bus_transitions = sum(per_line[: self.width])
        return TransitionReport(
            total=total,
            bus_transitions=bus_transitions,
            extra_transitions=total - bus_transitions,
            cycles=int(diffs.size),
            per_line=per_line,
        )

    def to_words(self) -> List[EncodedWord]:
        """Materialize the per-cycle :class:`EncodedWord` objects (slow —
        for verification against the reference path, not the hot path)."""
        bus_mask = (1 << self.width) - 1
        extras = len(self.extra_names)
        return [
            EncodedWord(
                value & bus_mask,
                tuple(
                    (value >> (self.width + line)) & 1
                    for line in range(extras)
                ),
            )
            for value in self.packed.tolist()
        ]


def has_encode_kernel(codec: Codec) -> bool:
    """Can :func:`encode_stream_kernel` handle this codec?"""
    return (
        codec.name in _ENCODE_KERNELS
        and codec.width + len(codec.extra_lines) <= 64
    )


def has_decode_kernel(codec: Codec) -> bool:
    """Can :func:`decode_stream_kernel` handle this codec?"""
    return (
        codec.name in _DECODE_KERNELS
        and codec.width + len(codec.extra_lines) <= 64
    )


def _paired_sels(
    sels: Optional[ArrayLike], length: int, first_name: str
) -> Optional[np.ndarray]:
    if sels is None:
        return None
    array = np.asarray(sels)
    if array.ndim != 1:
        raise ValueError(
            f"expected a 1-D sel array, got shape {array.shape}"
        )
    if array.size != length:
        raise ValueError(
            f"{first_name} length {length} != sels length {array.size}"
        )
    return array


def encode_stream_kernel(
    codec: Codec,
    addresses: ArrayLike,
    sels: Optional[ArrayLike] = None,
) -> KernelResult:
    """Encode a whole stream through the codec's columnar kernel.

    Bit-identical to ``codec.make_encoder().encode_stream(...)`` packed
    via :meth:`EncodedWord.packed`, including the validation errors.
    Raises :class:`KeyError` when the codec has no kernel — callers
    gate on :func:`has_encode_kernel` and fall back to the reference path.
    """
    if not has_encode_kernel(codec):
        raise KeyError(f"no encode kernel for codec {codec.name!r}")
    a = _as_u64(addresses, width=codec.width)
    sel_array = _paired_sels(sels, a.size, "addresses")
    packed = _ENCODE_KERNELS[codec.name](codec, a, sel_array)
    obs_metrics.counter("core.kernel_words", codec=codec.name).inc(
        int(packed.size)
    )
    return KernelResult(
        codec_name=codec.name,
        width=codec.width,
        extra_names=tuple(codec.extra_lines),
        packed=packed,
    )


def decode_stream_kernel(
    codec: Codec,
    words: Union[KernelResult, ArrayLike],
    sels: Optional[ArrayLike] = None,
) -> np.ndarray:
    """Decode a packed stream back into addresses (uint64 array).

    Accepts a :class:`KernelResult` or a packed uint64 vector.  Raises
    the reference decoders' errors (``"INC asserted..."``) on malformed
    streams and :class:`KeyError` when the codec has no decode kernel.
    """
    if not has_decode_kernel(codec):
        raise KeyError(f"no decode kernel for codec {codec.name!r}")
    if isinstance(words, KernelResult):
        packed = words.packed
    else:
        packed = np.asarray(words, dtype=np.uint64)
    if packed.ndim != 1:
        raise ValueError(
            f"expected a 1-D packed array, got shape {packed.shape}"
        )
    sel_array = _paired_sels(sels, packed.size, "words")
    decoded = _DECODE_KERNELS[codec.name](codec, packed, sel_array)
    obs_metrics.counter("core.kernel_decoded_words", codec=codec.name).inc(
        int(decoded.size)
    )
    return decoded
