"""Bus-invert encoding (Stan & Burleson), paper Section 2.1.

One redundant line ``INV`` signals the polarity of the transmitted pattern.
The encoder compares the Hamming distance ``H`` between the previously
*encoded* word (address lines concatenated with the previous ``INV`` value,
``N + 1`` lines total) and the candidate word ``address | INV=0``:

* ``H > N/2``  → transmit the complemented address, assert ``INV``;
* ``H <= N/2`` → transmit the address as-is, de-assert ``INV``.

This bounds the number of toggling wires per cycle to ``ceil((N + 1) / 2)``
and minimises average activity on temporally random streams — which is why
the paper recommends it for *data* address buses and shows it gaining nothing
on highly sequential instruction streams (Table 2 vs Table 3).
"""

from __future__ import annotations

from repro.core.base import BusDecoder, BusEncoder, SEL_INSTRUCTION
from repro.core.word import EncodedWord, hamming


class BusInvertEncoder(BusEncoder):
    """Stan & Burleson's bus-invert code (paper Equation 1)."""

    extra_lines = ("INV",)

    def __init__(self, width: int):
        super().__init__(width)
        self.reset()

    def reset(self) -> None:
        # Power-up state: bus at all zeros, INV de-asserted.
        self._prev_bus = 0
        self._prev_inv = 0

    def encode(self, address: int, sel: int = SEL_INSTRUCTION) -> EncodedWord:
        address = self._check_address(address)
        # H is measured over the N address lines plus the INV line, with the
        # candidate INV bit at 0 (Equation 1: H = d(B|INV, b|0)).
        distance = hamming(self._prev_bus, address) + self._prev_inv
        if 2 * distance > self.width:  # H > N/2 without float division
            bus = ~address & self._mask
            inv = 1
        else:
            bus = address
            inv = 0
        self._prev_bus = bus
        self._prev_inv = inv
        return EncodedWord(bus, (inv,))


class BusInvertDecoder(BusDecoder):
    """Re-inverts the bus when ``INV`` is asserted (paper Equation 2)."""

    def reset(self) -> None:
        """Stateless; the polarity travels with every word."""

    def decode(self, word: EncodedWord, sel: int = SEL_INSTRUCTION) -> int:
        (inv,) = word.extras
        if inv:
            return ~word.bus & self._mask
        return word.bus & self._mask
