"""Gray encoding (Su/Tsui/Despain) with the byte-addressable stride variant.

The binary-reflected Gray code guarantees a *single* line transition between
consecutive integers, which is optimal among irredundant codes for perfectly
sequential streams (paper, Section 2.2).  On byte-addressable machines the
address step between consecutive words is a stride ``S = 2**k`` rather than 1;
Mehta/Owens/Irwin's fix (paper reference [5]) is reproduced here by Gray-coding
the word part ``address >> k`` and passing the ``k`` byte-offset bits through
unchanged, so an ``+S`` step still flips exactly one wire.
"""

from __future__ import annotations

from repro.core.base import BusDecoder, BusEncoder, SEL_INSTRUCTION
from repro.core.word import EncodedWord


def binary_to_gray(value: int) -> int:
    """Binary-reflected Gray code of ``value``."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return value ^ (value >> 1)


def gray_to_binary(code: int) -> int:
    """Inverse of :func:`binary_to_gray`."""
    if code < 0:
        raise ValueError(f"code must be non-negative, got {code}")
    value = code
    shift = 1
    while (value >> shift) != 0:
        value ^= value >> shift
        shift <<= 1
    return value


def _check_stride(stride: int) -> int:
    if stride < 1 or (stride & (stride - 1)) != 0:
        raise ValueError(f"stride must be a power of two, got {stride}")
    return stride


class GrayEncoder(BusEncoder):
    """Gray-codes the word part of the address; byte-offset bits pass through."""

    extra_lines = ()

    def __init__(self, width: int, stride: int = 1):
        super().__init__(width)
        self.stride = _check_stride(stride)
        self._offset_bits = self.stride.bit_length() - 1
        self._offset_mask = self.stride - 1

    def reset(self) -> None:
        """Stateless; nothing to reset."""

    def encode(self, address: int, sel: int = SEL_INSTRUCTION) -> EncodedWord:
        address = self._check_address(address)
        word_part = address >> self._offset_bits
        coded = binary_to_gray(word_part) << self._offset_bits
        return EncodedWord((coded | (address & self._offset_mask)) & self._mask)


class GrayDecoder(BusDecoder):
    """Inverse of :class:`GrayEncoder`."""

    def __init__(self, width: int, stride: int = 1):
        super().__init__(width)
        self.stride = _check_stride(stride)
        self._offset_bits = self.stride.bit_length() - 1
        self._offset_mask = self.stride - 1

    def reset(self) -> None:
        """Stateless; nothing to reset."""

    def decode(self, word: EncodedWord, sel: int = SEL_INSTRUCTION) -> int:
        coded = word.bus & self._mask
        word_part = gray_to_binary(coded >> self._offset_bits)
        return ((word_part << self._offset_bits) | (coded & self._offset_mask)) & self._mask
