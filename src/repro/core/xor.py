"""Irredundant difference-based codes related to the paper's future work.

The paper's conclusions point at exploring further codes for different parts
of the memory hierarchy.  Two classic irredundant alternatives from the same
research thread are provided for comparison:

* **Offset code** — transmit the arithmetic difference
  ``B(t) = (b(t) - b(t-1)) mod 2**N``.  A perfectly sequential stream has a
  *constant* offset ``S``, so the bus freezes (zero transitions) without any
  redundant wire; the price is that a single random address costs roughly a
  random word's worth of toggles, twice (into and out of the offset domain).

* **INC-XOR code** — transition-signalled XOR against the in-sequence
  prediction: the logical word is ``L(t) = b(t) XOR (b(t-1) + S)`` and the
  physical lines toggle where ``L`` has ones (``B(t) = L(t) XOR B(t-1)``).
  In-sequence addresses give ``L = 0`` — zero toggles — matching T0's
  asymptotic behaviour with no redundant line, while out-of-sequence
  addresses cost ``H(b(t), b(t-1)+S)`` toggles.

Both codes decode from local state only, like T0.
"""

from __future__ import annotations

from repro.core.base import BusDecoder, BusEncoder, SEL_INSTRUCTION
from repro.core.t0 import check_stride
from repro.core.word import EncodedWord


class OffsetEncoder(BusEncoder):
    """Transmit the modular difference between consecutive addresses."""

    extra_lines = ()

    def __init__(self, width: int):
        super().__init__(width)
        self.reset()

    def reset(self) -> None:
        # Power-up convention: the first word is the address itself
        # (difference against an implicit previous address of zero).
        self._prev_address = 0

    def encode(self, address: int, sel: int = SEL_INSTRUCTION) -> EncodedWord:
        address = self._check_address(address)
        offset = (address - self._prev_address) & self._mask
        self._prev_address = address
        return EncodedWord(offset)


class OffsetDecoder(BusDecoder):
    """Accumulate offsets back into absolute addresses."""

    def __init__(self, width: int):
        super().__init__(width)
        self.reset()

    def reset(self) -> None:
        self._prev_address = 0

    def decode(self, word: EncodedWord, sel: int = SEL_INSTRUCTION) -> int:
        address = (self._prev_address + word.bus) & self._mask
        self._prev_address = address
        return address


class IncXorEncoder(BusEncoder):
    """Transition-signalled XOR against the ``b(t-1) + S`` prediction."""

    extra_lines = ()

    def __init__(self, width: int, stride: int = 4):
        super().__init__(width)
        self.stride = check_stride(stride)
        self.reset()

    def reset(self) -> None:
        self._prev_address: int | None = None
        self._prev_bus = 0

    def encode(self, address: int, sel: int = SEL_INSTRUCTION) -> EncodedWord:
        address = self._check_address(address)
        if self._prev_address is None:
            # First cycle: no prediction exists; send the address in binary.
            logical = address ^ self._prev_bus
        else:
            prediction = (self._prev_address + self.stride) & self._mask
            logical = address ^ prediction
        bus = logical ^ self._prev_bus
        self._prev_address = address
        self._prev_bus = bus
        return EncodedWord(bus)


class IncXorDecoder(BusDecoder):
    """Inverse of :class:`IncXorEncoder`."""

    def __init__(self, width: int, stride: int = 4):
        super().__init__(width)
        self.stride = check_stride(stride)
        self.reset()

    def reset(self) -> None:
        self._prev_address: int | None = None
        self._prev_bus = 0

    def decode(self, word: EncodedWord, sel: int = SEL_INSTRUCTION) -> int:
        logical = word.bus ^ self._prev_bus
        if self._prev_address is None:
            address = logical & self._mask
        else:
            prediction = (self._prev_address + self.stride) & self._mask
            address = logical ^ prediction
        self._prev_address = address
        self._prev_bus = word.bus
        return address & self._mask
