"""Plain binary (identity) encoding — the paper's reference baseline.

All savings figures in Tables 2–7 are expressed relative to this code.  It is
irredundant (no extra lines) and needs no encoding/decoding circuitry beyond
bus buffers.
"""

from __future__ import annotations

from repro.core.base import BusDecoder, BusEncoder, SEL_INSTRUCTION
from repro.core.word import EncodedWord


class BinaryEncoder(BusEncoder):
    """Transmits each address unmodified."""

    extra_lines = ()

    def reset(self) -> None:
        """Stateless; nothing to reset."""

    def encode(self, address: int, sel: int = SEL_INSTRUCTION) -> EncodedWord:
        return EncodedWord(self._check_address(address))


class BinaryDecoder(BusDecoder):
    """Reads the address straight off the bus."""

    def reset(self) -> None:
        """Stateless; nothing to reset."""

    def decode(self, word: EncodedWord, sel: int = SEL_INSTRUCTION) -> int:
        return word.bus & self._mask
