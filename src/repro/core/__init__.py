"""Bus encoding codes — the paper's primary contribution.

Exports the encoder/decoder framework, the individual codes and the codec
registry.  See :mod:`repro.core.registry` for the list of code names.
"""

from repro.core.base import (
    SEL_DATA,
    SEL_INSTRUCTION,
    BusDecoder,
    BusEncoder,
    Codec,
    CodecState,
    RoundTripError,
    SteppableStateMixin,
    decode_stream,
    encode_stream,
    verify_roundtrip,
)
from repro.core.beach import BeachCode, BeachDecoder, BeachEncoder, train_beach_code
from repro.core.binary import BinaryDecoder, BinaryEncoder
from repro.core.businvert import BusInvertDecoder, BusInvertEncoder
from repro.core.dualt0 import DualT0Decoder, DualT0Encoder
from repro.core.dualt0bi import DualT0BIDecoder, DualT0BIEncoder
from repro.core.gray import (
    GrayDecoder,
    GrayEncoder,
    binary_to_gray,
    gray_to_binary,
)
from repro.core.mtf import MtfDecoder, MtfEncoder
from repro.core.partitioned import (
    PartitionedBusInvertDecoder,
    PartitionedBusInvertEncoder,
    partition_bounds,
)
from repro.core.registry import available_codecs, make_codec, register_codec
from repro.core.t0 import T0Decoder, T0Encoder
from repro.core.t0bi import T0BIDecoder, T0BIEncoder
from repro.core.word import EncodedWord, hamming, mask, popcount
from repro.core.wze import WorkingZoneDecoder, WorkingZoneEncoder
from repro.core.xor import (
    IncXorDecoder,
    IncXorEncoder,
    OffsetDecoder,
    OffsetEncoder,
)

__all__ = [
    "SEL_DATA",
    "SEL_INSTRUCTION",
    "BeachCode",
    "BeachDecoder",
    "BeachEncoder",
    "BinaryDecoder",
    "BinaryEncoder",
    "BusDecoder",
    "BusEncoder",
    "BusInvertDecoder",
    "BusInvertEncoder",
    "Codec",
    "CodecState",
    "SteppableStateMixin",
    "DualT0BIDecoder",
    "DualT0BIEncoder",
    "DualT0Decoder",
    "DualT0Encoder",
    "EncodedWord",
    "GrayDecoder",
    "GrayEncoder",
    "IncXorDecoder",
    "IncXorEncoder",
    "MtfDecoder",
    "MtfEncoder",
    "OffsetDecoder",
    "OffsetEncoder",
    "PartitionedBusInvertDecoder",
    "PartitionedBusInvertEncoder",
    "RoundTripError",
    "partition_bounds",
    "T0BIDecoder",
    "T0BIEncoder",
    "T0Decoder",
    "T0Encoder",
    "WorkingZoneDecoder",
    "WorkingZoneEncoder",
    "available_codecs",
    "binary_to_gray",
    "decode_stream",
    "encode_stream",
    "gray_to_binary",
    "hamming",
    "make_codec",
    "mask",
    "popcount",
    "register_codec",
    "train_beach_code",
    "verify_roundtrip",
]
