"""Partitioned bus-invert encoding (Stan & Burleson's own extension).

Plain bus-invert's single majority vote dilutes as the bus widens: a 32-bit
bus rarely flips more than 16 of its lines *coherently*.  Partitioning the
bus into ``k`` independent sub-buses, each with its own INV line and its own
majority vote, recovers the savings at the cost of ``k`` redundant wires —
the classic area/power trade of the original bus-invert paper.

Included here because the paper's data-address analysis (Table 3) is exactly
the regime where partitioning pays: the stack/heap region swings flip the
*high* half of the bus coherently while the low half stays random, so
per-partition votes trigger where the global vote stalls.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.base import BusDecoder, BusEncoder, SEL_INSTRUCTION
from repro.core.word import EncodedWord, hamming, mask


def partition_bounds(width: int, partitions: int) -> List[Tuple[int, int]]:
    """Split ``width`` lines into ``partitions`` contiguous ``(low, size)``
    spans, low bits first, sizes as equal as possible."""
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    if partitions > width:
        raise ValueError(
            f"cannot split {width} lines into {partitions} partitions"
        )
    base = width // partitions
    remainder = width % partitions
    bounds: List[Tuple[int, int]] = []
    low = 0
    for index in range(partitions):
        size = base + (1 if index < remainder else 0)
        bounds.append((low, size))
        low += size
    return bounds


class PartitionedBusInvertEncoder(BusEncoder):
    """Bus-invert with an independent INV wire per partition."""

    def __init__(self, width: int, partitions: int = 4):
        super().__init__(width)
        self._bounds = partition_bounds(width, partitions)
        self.partitions = partitions
        self.extra_lines = tuple(
            f"INV{i}" for i in range(partitions)
        )
        self.reset()

    def reset(self) -> None:
        self._prev_fields = [0] * self.partitions
        self._prev_invs = [0] * self.partitions

    def encode(self, address: int, sel: int = SEL_INSTRUCTION) -> EncodedWord:
        address = self._check_address(address)
        bus = 0
        invs: List[int] = []
        for index, (low, size) in enumerate(self._bounds):
            field = (address >> low) & mask(size)
            distance = hamming(self._prev_fields[index], field) + self._prev_invs[index]
            if 2 * distance > size:  # H > size/2 over size+1 wires
                field = ~field & mask(size)
                inv = 1
            else:
                inv = 0
            bus |= field << low
            invs.append(inv)
            self._prev_fields[index] = field
            self._prev_invs[index] = inv
        return EncodedWord(bus, tuple(invs))


class PartitionedBusInvertDecoder(BusDecoder):
    """Per-partition conditional re-inversion."""

    def __init__(self, width: int, partitions: int = 4):
        super().__init__(width)
        self._bounds = partition_bounds(width, partitions)
        self.partitions = partitions

    def reset(self) -> None:
        """Stateless; the polarities travel with every word."""

    def decode(self, word: EncodedWord, sel: int = SEL_INSTRUCTION) -> int:
        if len(word.extras) != self.partitions:
            raise ValueError(
                f"expected {self.partitions} INV lines, got {len(word.extras)}"
            )
        address = 0
        for (low, size), inv in zip(self._bounds, word.extras):
            field = (word.bus >> low) & mask(size)
            if inv:
                field = ~field & mask(size)
            address |= field << low
        return address & self._mask
