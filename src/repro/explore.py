"""Design-space exploration: pick a bus code for a concrete design point.

The paper's Sections 2–4 are, operationally, a decision procedure: given
the traffic your bus actually carries and the capacitance it drives, weigh
each code's activity reduction against its codec power, area and timing.
This module packages that procedure:

* :func:`explore_design_space` — evaluate every implemented codec circuit
  on a trace across a load sweep (global power, codec area, critical path);
* :func:`pareto_front` — the non-dominated (power, area) points per load;
* :func:`recommend` — the paper-style recommendation: minimum global power
  at the design's load, with the runner-up margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.metrics import count_transitions
from repro.rtl.codecs import DECODER_BUILDERS, ENCODER_BUILDERS
from repro.rtl.pads import PAD_INPUT_CAP, OutputPadBank
from repro.rtl.power import estimate_from_simulation
from repro.tracegen.trace import AddressTrace


@dataclass(frozen=True)
class DesignPoint:
    """One (code, load) evaluation."""

    codec_name: str
    load_farads: float
    global_power_w: float  # pads + encoder + decoder
    pad_power_w: float
    codec_power_w: float  # encoder + decoder logic
    encoder_gates: int
    decoder_gates: int
    critical_path_ns: float
    bus_activity: float  # encoded transitions per cycle

    @property
    def area_gates(self) -> int:
        return self.encoder_gates + self.decoder_gates


def explore_design_space(
    trace: AddressTrace,
    loads: Sequence[float],
    codes: Sequence[str] = ("binary", "t0", "bus-invert", "dualt0", "dualt0bi"),
    width: int = 32,
) -> List[DesignPoint]:
    """Evaluate every codec circuit on ``trace`` across a load sweep."""
    if not loads:
        raise ValueError("need at least one load point")
    sels = trace.effective_sels()
    points: List[DesignPoint] = []
    for name in codes:
        encoder = ENCODER_BUILDERS[name](width)
        enc_result, words = encoder.run(trace.addresses, sels)
        decoder = DECODER_BUILDERS[name](width)
        dec_result, decoded = decoder.run(words, sels)
        if list(decoded) != list(trace.addresses):
            raise AssertionError(f"{name} circuit roundtrip failed")
        activity = count_transitions(words, width=width).per_cycle
        lines = width + words[0].extra_count
        encoder_power = estimate_from_simulation(
            enc_result, output_load=PAD_INPUT_CAP
        ).total
        decoder_power = estimate_from_simulation(
            dec_result, output_load=0.1e-12
        ).total
        path = max(
            encoder.netlist.critical_path_ns(),
            decoder.netlist.critical_path_ns(),
        )
        for load in loads:
            pad_power = OutputPadBank(lines, load).power(activity)
            points.append(
                DesignPoint(
                    codec_name=name,
                    load_farads=load,
                    global_power_w=pad_power + encoder_power + decoder_power,
                    pad_power_w=pad_power,
                    codec_power_w=encoder_power + decoder_power,
                    encoder_gates=encoder.netlist.gate_count,
                    decoder_gates=decoder.netlist.gate_count,
                    critical_path_ns=path,
                    bus_activity=activity,
                )
            )
    return points


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated points: nothing else is both lower-power and smaller.

    All points must share one load (compare like with like); pass one
    load's slice of :func:`explore_design_space`.
    """
    if not points:
        return []
    loads = {point.load_farads for point in points}
    if len(loads) != 1:
        raise ValueError("pareto_front expects points at a single load")
    front: List[DesignPoint] = []
    for candidate in points:
        dominated = any(
            other.global_power_w <= candidate.global_power_w
            and other.area_gates <= candidate.area_gates
            and (
                other.global_power_w < candidate.global_power_w
                or other.area_gates < candidate.area_gates
            )
            for other in points
        )
        if not dominated:
            front.append(candidate)
    return sorted(front, key=lambda p: p.global_power_w)


def recommend(
    trace: AddressTrace,
    load_farads: float,
    codes: Sequence[str] = ("binary", "t0", "bus-invert", "dualt0", "dualt0bi"),
    width: int = 32,
) -> Tuple[DesignPoint, float]:
    """The minimum-global-power code at one load, plus the margin (watts)
    to the runner-up."""
    points = explore_design_space(trace, [load_farads], codes, width)
    ranked = sorted(points, key=lambda p: p.global_power_w)
    margin = (
        ranked[1].global_power_w - ranked[0].global_power_w
        if len(ranked) > 1
        else 0.0
    )
    return ranked[0], margin
