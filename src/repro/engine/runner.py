"""The batch engine: cache probe, worker fan-out, deterministic merge.

:meth:`BatchEngine.run` takes a list of :class:`~repro.engine.cells.Cell`
jobs and returns their payloads *in submission order* — results are merged
by cell index, never by completion order, so the output is deterministic
under any worker scheduling.  Per cell the engine:

1. probes the result cache (parent-side; hits never reach a worker);
2. fans the misses out over a ``multiprocessing`` pool (``jobs > 1``) or
   computes them in-process (``jobs == 1``), rebuilding each codec inside
   the worker from ``(name, width, params)`` — codecs that cannot be
   rebuilt that way (the trained beach code) run in the parent and are
   not cached, since their params do not determine their behaviour;
3. replays each worker's captured trace spans into the parent's sinks
   (with fresh ids — see :func:`repro.obs.trace.replay_events`), writes
   the new payloads back to the cache, and updates the
   ``engine.cache.hits`` / ``engine.cache.misses`` / ``engine.cells`` /
   ``core.encoded_words`` counters that run manifests snapshot.

A warm rerun of an unchanged workload therefore performs **zero** codec
encode work: every cell is served in step 1, no encode span is emitted
and ``core.encoded_words`` stays untouched — the property the CI smoke
run asserts.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.base import Codec
from repro.engine.cache import ResultCache, cell_key, code_version
from repro.engine.cells import (
    DEFAULT_CHUNK_SIZE,
    METRIC_BINARY,
    METRIC_POWER,
    Cell,
    cell_path,
    compute_cell,
)
from repro.obs import metrics as obs_metrics
from repro.obs.trace import (
    capture as obs_capture,
    detach_sinks,
    enabled as obs_enabled,
    replay_events,
    span as obs_span,
)


@dataclass
class EngineStats:
    """Cumulative counters over one engine's lifetime."""

    jobs: int = 1
    cells: int = 0
    hits: int = 0
    misses: int = 0
    uncacheable: int = 0
    worker_wall_s: float = 0.0
    queue_wall_s: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.cells} cells: {self.hits} cached, "
            f"{self.misses} computed, {self.uncacheable} uncacheable "
            f"({self.worker_wall_s:.2f}s worker wall, "
            f"{self.queue_wall_s:.2f}s queued, jobs={self.jobs})"
        )


def _worker_init() -> None:
    # The forked child inherits the parent's trace sinks (shared file
    # descriptors) — drop them without closing; spans are captured per
    # task and replayed by the parent instead.
    detach_sinks()


#: One schedulable worker task: ``(index, cell, chunk_size, traced,
#: use_kernels, submitted_at)``.  ``submitted_at`` is the parent's
#: ``time.perf_counter()`` at enqueue time; on Linux the monotonic clock
#: is system-wide, so the forked worker can subtract it to measure how
#: long the task sat in the pool queue before a worker picked it up.
_CellTask = Tuple[int, Cell, int, bool, bool, float]

#: Worker outcome: ``(index, payload, meta, events)``.  ``meta`` carries
#: telemetry only (``wall_s``, ``queue_s``, ``path``) — it never touches
#: the payload, which must stay byte-identical across execution paths.
_CellOutcome = Tuple[int, Dict[str, Any], Dict[str, Any], List[Dict[str, Any]]]


def _run_cell(task: _CellTask) -> _CellOutcome:
    """Worker entry point: compute one cell, capturing its trace spans."""
    index, cell, chunk_size, traced, use_kernels, submitted_at = task
    started = time.perf_counter()
    events: List[Dict[str, Any]]
    if traced:
        with obs_capture() as sink:
            payload = compute_cell(
                cell, chunk_size=chunk_size, use_kernels=use_kernels
            )
        events = sink.events
    else:
        payload = compute_cell(
            cell, chunk_size=chunk_size, use_kernels=use_kernels
        )
        events = []
    meta = {
        "wall_s": time.perf_counter() - started,
        "queue_s": max(0.0, started - submitted_at),
        "path": cell_path(cell, use_kernels),
    }
    return index, payload, meta, events


class BatchEngine:
    """Executes cell batches with memoization and optional parallelism.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` computes in-process (no fork).
    cache_dir:
        Result cache directory, or None to disable caching.
    chunk_size:
        Addresses per steppable-API chunk inside each worker.
    refresh:
        Recompute every cell and overwrite its cache entry (the
        ``--refresh`` CLI flag).
    use_kernels:
        Route codec-transitions cells through the columnar numpy kernels
        (:mod:`repro.core.kernels`); codecs without a kernel fall back to
        the steppable reference path transparently.  ``False`` forces the
        reference path everywhere (the ``--no-kernels`` CLI flag).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, "object"]] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        refresh: bool = False,
        use_kernels: bool = True,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = (
            cache_dir
            if isinstance(cache_dir, ResultCache)
            else ResultCache(cache_dir)
            if cache_dir is not None
            else None
        )
        self.chunk_size = chunk_size
        self.refresh = refresh
        self.use_kernels = use_kernels
        self.stats = EngineStats(jobs=self.jobs)
        self._rebuild_probe: Dict[Tuple[Any, ...], bool] = {}

    # -- codec rebuildability ------------------------------------------

    def _rebuildable(self, cell: Cell) -> bool:
        """Can a worker reconstruct this cell's codec from its fields?"""
        if cell.metric == METRIC_BINARY:
            return True
        spec = (cell.metric, cell.codec_name, cell.width, cell.params)
        cached = self._rebuild_probe.get(spec)
        if cached is None:
            try:
                if cell.metric == METRIC_POWER:
                    from repro.rtl.codecs import ENCODER_BUILDERS

                    cached = cell.codec_name in ENCODER_BUILDERS
                else:
                    from repro.core.registry import make_codec

                    make_codec(
                        cell.codec_name, cell.width, **dict(cell.params)
                    )
                    cached = True
            except Exception:
                cached = False
            self._rebuild_probe[spec] = cached
        return cached

    # -- execution ------------------------------------------------------

    def run(
        self,
        cells: Sequence[Cell],
        codecs: Optional[Dict[str, Codec]] = None,
    ) -> List[Dict[str, Any]]:
        """Execute a batch; returns payloads in submission order.

        ``codecs`` maps codec name → live :class:`Codec` and is required
        only for codecs a worker cannot rebuild by name (trained codes).
        """
        codecs = codecs or {}
        results: List[Optional[Dict[str, Any]]] = [None] * len(cells)
        pool_tasks: List[_CellTask] = []
        inline: List[Tuple[int, Cell, bool]] = []  # (index, cell, cacheable)
        keys: Dict[int, str] = {}
        traced = obs_enabled()
        batch_hits = 0
        batch_started = time.perf_counter()

        with obs_span("engine", cells=len(cells), jobs=self.jobs):
            for index, cell in enumerate(cells):
                self.stats.cells += 1
                obs_metrics.counter("engine.cells", metric=cell.metric).inc()
                rebuildable = self._rebuildable(cell)
                cacheable = self.cache is not None and rebuildable
                if cacheable:
                    version = code_version(
                        cell.metric,
                        codecs.get(cell.codec_name),
                        codec_name=cell.codec_name,
                    )
                    keys[index] = cell_key(cell, version)
                    if not self.refresh:
                        hit = self.cache.get(keys[index])
                        if hit is not None:
                            results[index] = hit
                            self.stats.hits += 1
                            batch_hits += 1
                            obs_metrics.counter(
                                "engine.cache.hits", metric=cell.metric
                            ).inc()
                            continue
                    obs_metrics.counter(
                        "engine.cache.misses", metric=cell.metric
                    ).inc()
                elif self.cache is not None:
                    self.stats.uncacheable += 1
                    obs_metrics.counter(
                        "engine.cache.uncacheable", metric=cell.metric
                    ).inc()
                self.stats.misses += 1
                if rebuildable:
                    pool_tasks.append(
                        (
                            index,
                            cell,
                            self.chunk_size,
                            traced,
                            self.use_kernels,
                            time.perf_counter(),
                        )
                    )
                else:
                    inline.append((index, cell, False))

            outcomes: List[_CellOutcome] = []
            if pool_tasks and self.jobs > 1:
                context = multiprocessing.get_context()
                with context.Pool(
                    processes=min(self.jobs, len(pool_tasks)),
                    initializer=_worker_init,
                ) as pool:
                    outcomes.extend(
                        pool.imap_unordered(_run_cell, pool_tasks)
                    )
            else:
                outcomes.extend(_run_cell(task) for task in pool_tasks)

            for index, cell, _ in inline:
                codec = codecs.get(cell.codec_name)
                if codec is None:
                    raise KeyError(
                        f"cell {cell.label()} needs a live codec "
                        f"{cell.codec_name!r} (not rebuildable by name)"
                    )
                started = time.perf_counter()
                payload = compute_cell(
                    cell,
                    codec=codec,
                    chunk_size=self.chunk_size,
                    use_kernels=self.use_kernels,
                )
                meta = {
                    "wall_s": time.perf_counter() - started,
                    "queue_s": 0.0,
                    "path": cell_path(cell, self.use_kernels, codec=codec),
                }
                outcomes.append((index, payload, meta, []))

            for index, payload, meta, events in outcomes:
                cell = cells[index]
                results[index] = payload
                wall_s = float(meta["wall_s"])
                queue_s = float(meta["queue_s"])
                path = str(meta["path"])
                self.stats.worker_wall_s += wall_s
                self.stats.queue_wall_s += queue_s
                obs_metrics.histogram("engine.cell_wall_s").observe(wall_s)
                obs_metrics.counter("engine.worker_wall_ms").inc(
                    int(wall_s * 1000)
                )
                # Queue-wait vs compute split and per-path breakdown, in
                # microseconds so sub-second cells spread across the
                # power-of-two buckets.
                obs_metrics.histogram(
                    "engine.cell_compute_us", path=path
                ).observe(wall_s * 1e6)
                obs_metrics.histogram("engine.cell_queue_us").observe(
                    queue_s * 1e6
                )
                obs_metrics.counter("engine.path_wall_ms", path=path).inc(
                    int(wall_s * 1000)
                )
                replay_events(events)
                encoded = payload.get("encoded_words")
                if isinstance(encoded, int):
                    obs_metrics.counter(
                        "core.encoded_words", codec=cell.codec_name
                    ).inc(encoded)
                simulated = payload.get("simulated_cycles")
                if isinstance(simulated, int):
                    obs_metrics.counter(
                        "rtl.simulated_cycles", codec=cell.codec_name
                    ).inc(simulated)
                if self.cache is not None and index in keys:
                    self.cache.put(keys[index], payload)

            # Batch-level utilization gauges (last batch wins — gauges
            # are point-in-time by contract).
            batch_wall_s = time.perf_counter() - batch_started
            computed_wall_s = sum(
                float(meta["wall_s"]) for _, _, meta, _ in outcomes
            )
            capacity_s = batch_wall_s * self.jobs
            obs_metrics.gauge("engine.worker_utilization").set(
                computed_wall_s / capacity_s if capacity_s > 0 else 0.0
            )
            obs_metrics.gauge("engine.cache.hit_rate").set(
                batch_hits / len(cells) if cells else 0.0
            )

        missing = [i for i, payload in enumerate(results) if payload is None]
        if missing:  # pragma: no cover - defensive
            raise RuntimeError(f"engine lost cells at indices {missing}")
        return results  # type: ignore[return-value]
