"""Job cells: the unit of work the batch engine schedules and caches.

A table regeneration is a grid of independent **cells**, one per
(trace, codec, metric) triple.  Three metrics exist:

``binary-reference``
    The plain-binary transition report plus the in-sequence fraction of a
    stream — the denominator of every savings column.
``codec-transitions``
    One codec's transition report over a stream.  Computed in chunks via
    the steppable API (:meth:`repro.core.base.BusEncoder.step_stream`), so
    a worker carries the codec registers across chunk boundaries and the
    result is bit-identical to one uninterrupted ``encode_stream``.
``power-sim``
    One codec's gate-level encoder+decoder simulation over a stream
    (Tables 8/9).  The payload carries only what the power estimator
    reads — cycle and toggle counts — not the per-cycle output vectors;
    the parent rebuilds the (deterministic) netlists by name.

Every cell payload is a plain JSON-ready dict, which is what makes the
on-disk result cache trivial: a cell is *content-addressed* by
:func:`cell_key` and its payload is the full computation result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.metrics.report import ComparisonRow

from repro.core import kernels
from repro.core.base import Codec
from repro.core.word import EncodedWord
from repro.metrics.fast import (
    binary_reference_report,
    count_transitions_fast,
    in_sequence_fraction_fast,
)
from repro.metrics.transitions import TransitionReport
from repro.obs.trace import span as obs_span

#: Default number of addresses per steppable-API chunk.  Large enough to
#: amortise the per-chunk state snapshot, small enough that a chunk's
#: word list stays cache-friendly.
DEFAULT_CHUNK_SIZE = 4096

METRIC_BINARY = "binary-reference"
METRIC_CODEC = "codec-transitions"
METRIC_POWER = "power-sim"


@dataclass(frozen=True)
class Cell:
    """One schedulable unit: a metric over one stream under one codec.

    ``trace_name`` is display metadata only — it is deliberately *not*
    part of the cache key, so two benchmarks that happen to share a
    stream share cache entries.  ``params`` is the codec's constructor
    parameters as a sorted item tuple (hashable, picklable).
    """

    metric: str
    trace_name: str
    codec_name: str
    width: int
    params: Tuple[Tuple[str, Any], ...]
    stride: int
    addresses: Tuple[int, ...]
    sels: Optional[Tuple[int, ...]]

    def label(self) -> str:
        return f"{self.metric}:{self.trace_name}:{self.codec_name}"


def make_cell(
    metric: str,
    trace_name: str,
    addresses: Sequence[int],
    sels: Optional[Sequence[int]] = None,
    codec: Optional[Codec] = None,
    width: int = 32,
    stride: int = 4,
    codec_name: Optional[str] = None,
) -> Cell:
    """Build a cell, canonicalising codec identity from a live codec.

    ``codec_name`` overrides the name when no live codec is at hand —
    power cells identify their circuit by registry name alone.
    """
    if codec_name is None:
        codec_name = codec.name if codec is not None else "binary"
    return Cell(
        metric=metric,
        trace_name=trace_name,
        codec_name=codec_name,
        width=codec.width if codec is not None else width,
        params=(
            tuple(sorted(codec.params.items())) if codec is not None else ()
        ),
        stride=stride,
        addresses=tuple(addresses),
        sels=tuple(sels) if sels is not None else None,
    )


# ---------------------------------------------------------------------------
# TransitionReport <-> JSON payload
# ---------------------------------------------------------------------------


def report_to_payload(report: TransitionReport) -> Dict[str, Any]:
    return {
        "total": report.total,
        "bus_transitions": report.bus_transitions,
        "extra_transitions": report.extra_transitions,
        "cycles": report.cycles,
        "per_line": list(report.per_line),
    }


def report_from_payload(payload: Dict[str, Any]) -> TransitionReport:
    return TransitionReport(
        total=payload["total"],
        bus_transitions=payload["bus_transitions"],
        extra_transitions=payload["extra_transitions"],
        cycles=payload["cycles"],
        per_line=tuple(payload["per_line"]),
    )


# ---------------------------------------------------------------------------
# Cell computation
# ---------------------------------------------------------------------------


def chunked_encode(
    codec: Codec,
    addresses: Sequence[int],
    sels: Optional[Sequence[int]],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> List[EncodedWord]:
    """Encode a stream in chunks, carrying codec state across boundaries.

    Equivalent to one ``encode_stream`` call; each chunk runs on a fresh
    encoder instance restored from the previous chunk's exit state —
    exactly the handoff a worker performs, and the property
    ``tests/test_step_api.py`` locks across every registered codec.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk_size}")
    state = codec.make_encoder().initial_state()
    words: List[EncodedWord] = []
    for start in range(0, len(addresses), chunk_size):
        encoder = codec.make_encoder()
        chunk_sels = (
            sels[start : start + chunk_size] if sels is not None else None
        )
        state, chunk_words = encoder.step_stream(
            state, addresses[start : start + chunk_size], chunk_sels
        )
        words.extend(chunk_words)
    return words


def compute_cell(
    cell: Cell,
    codec: Optional[Codec] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    use_kernels: bool = True,
) -> Dict[str, Any]:
    """Run one cell to completion, returning its JSON-ready payload.

    ``codec`` overrides the registry rebuild — the parent process passes
    the live codec for codes that cannot be rebuilt from
    ``(name, width, params)`` alone (the trained beach code).
    ``use_kernels`` routes codec-transitions cells through the columnar
    kernels (:mod:`repro.core.kernels`) when the codec has one; the
    payload is identical either way.
    """
    if cell.metric == METRIC_BINARY:
        return _compute_binary_reference(cell)
    if cell.metric == METRIC_CODEC:
        return _compute_codec_transitions(cell, codec, chunk_size, use_kernels)
    if cell.metric == METRIC_POWER:
        return _compute_power_sim(cell)
    raise ValueError(f"unknown cell metric {cell.metric!r}")


def _cell_codec(cell: Cell, codec: Optional[Codec]) -> Codec:
    if codec is not None:
        return codec
    from repro.core.registry import make_codec

    return make_codec(cell.codec_name, cell.width, **dict(cell.params))


#: Execution paths a cell can take, as reported in engine telemetry.
PATH_COLUMNAR = "columnar"
PATH_GATE_SIM = "gate-sim"
PATH_KERNEL = "kernel"
PATH_STEPPABLE = "steppable"


def cell_path(
    cell: Cell, use_kernels: bool = True, codec: Optional[Codec] = None
) -> str:
    """Which execution path :func:`compute_cell` will take for ``cell``.

    Telemetry metadata only — it never enters the cell payload (payloads
    must stay byte-identical between the kernel and steppable paths so
    cache entries are path-agnostic).
    """
    if cell.metric == METRIC_BINARY:
        return PATH_COLUMNAR
    if cell.metric == METRIC_POWER:
        return PATH_GATE_SIM
    if not use_kernels:
        return PATH_STEPPABLE
    try:
        resolved = _cell_codec(cell, codec)
    except Exception:
        return PATH_STEPPABLE
    return (
        PATH_KERNEL
        if kernels.has_encode_kernel(resolved)
        else PATH_STEPPABLE
    )


def _compute_binary_reference(cell: Cell) -> Dict[str, Any]:
    with obs_span(
        "count", codec="binary", cycles=len(cell.addresses)
    ):
        report = binary_reference_report(cell.addresses, width=cell.width)
    return {
        "report": report_to_payload(report),
        "in_sequence": in_sequence_fraction_fast(cell.addresses, cell.stride),
    }


def _compute_codec_transitions(
    cell: Cell,
    codec: Optional[Codec],
    chunk_size: int,
    use_kernels: bool = True,
) -> Dict[str, Any]:
    codec = _cell_codec(cell, codec)
    if use_kernels and kernels.has_encode_kernel(codec):
        with obs_span("encode", codec=codec.name, cycles=len(cell.addresses)):
            result = kernels.encode_stream_kernel(
                codec, cell.addresses, cell.sels
            )
        with obs_span("count", codec=codec.name, cycles=result.cycles):
            report = result.report()
        return {
            "report": report_to_payload(report),
            "encoded_words": result.cycles,
        }
    with obs_span("encode", codec=codec.name, cycles=len(cell.addresses)):
        words = chunked_encode(codec, cell.addresses, cell.sels, chunk_size)
    with obs_span("count", codec=codec.name, cycles=len(words)):
        report = count_transitions_fast(words, width=cell.width)
    return {"report": report_to_payload(report), "encoded_words": len(words)}


def comparison_cells(
    codecs: Sequence[Codec],
    addresses: Sequence[int],
    sels: Optional[Sequence[int]] = None,
    stride: int = 4,
    benchmark: str = "",
) -> List[Cell]:
    """The cells of one :func:`repro.metrics.compare_codecs` row: the
    binary reference first, then one codec-transitions cell per codec."""
    width = codecs[0].width if codecs else 32
    cells = [
        make_cell(
            METRIC_BINARY,
            benchmark,
            addresses,
            sels=None,
            width=width,
            stride=stride,
        )
    ]
    cells.extend(
        make_cell(
            METRIC_CODEC,
            benchmark,
            addresses,
            sels=sels,
            codec=codec,
            stride=stride,
        )
        for codec in codecs
    )
    return cells


def row_from_results(
    codecs: Sequence[Codec],
    payloads: Sequence[Dict[str, Any]],
    length: int,
    benchmark: str = "",
) -> "ComparisonRow":
    """Assemble a :class:`~repro.metrics.report.ComparisonRow` from the
    payloads of :func:`comparison_cells` (same order)."""
    from repro.metrics.report import CodecResult, ComparisonRow

    binary_payload = payloads[0]
    binary_report = report_from_payload(binary_payload["report"])
    results = []
    for codec, payload in zip(codecs, payloads[1:]):
        report = report_from_payload(payload["report"])
        savings = (
            1.0 - report.total / binary_report.total
            if binary_report.total
            else 0.0
        )
        results.append(
            CodecResult(
                name=codec.name,
                transitions=report.total,
                savings=savings,
                report=report,
            )
        )
    return ComparisonRow(
        benchmark=benchmark,
        length=length,
        in_sequence=binary_payload["in_sequence"],
        binary_transitions=binary_report.total,
        results=tuple(results),
    )


def _compute_power_sim(cell: Cell) -> Dict[str, Any]:
    from repro.rtl.codecs import DECODER_BUILDERS, ENCODER_BUILDERS

    name = cell.codec_name
    with obs_span("simulate", codec=name, cycles=len(cell.addresses)):
        encoder = ENCODER_BUILDERS[name](cell.width)
        enc_result, words = encoder.run(cell.addresses, cell.sels)
        decoder = DECODER_BUILDERS[name](cell.width)
        dec_result, decoded = decoder.run(words, cell.sels)
    if list(decoded) != list(cell.addresses):
        raise AssertionError(f"{name} circuit roundtrip failed")
    with obs_span("count", codec=name, cycles=len(words)):
        report = count_transitions_fast(words, width=cell.width)
    return {
        "encoder": {
            "cycles": enc_result.cycles,
            "net_toggles": list(enc_result.net_toggles),
        },
        "decoder": {
            "cycles": dec_result.cycles,
            "net_toggles": list(dec_result.net_toggles),
        },
        "per_cycle": report.per_cycle,
        "line_count": cell.width + (words[0].extra_count if words else 0),
        "simulated_cycles": 2 * len(cell.addresses),
    }
