"""Content-addressed on-disk result cache for engine cells.

The cache key of a cell is a SHA-256 over

* a canonical JSON header: metric, codec name, bus width, codec
  parameters, in-sequence stride and the **code-version tag**;
* the raw address array bytes (little-endian uint64);
* the raw sel array bytes (or an explicit ``none`` marker).

The code-version tag is itself a SHA-256 over the *source files* that
determine the cell's result: the codec's defining module plus the shared
core/metrics machinery (and the gate-level RTL stack for power cells).
Editing one codec therefore invalidates exactly that codec's cells; the
shared files invalidate everything, which is the conservative and correct
behaviour for a result cache.

Entries are sharded two hex characters deep (``ab/abcdef….json``) and
written atomically (temp file + ``os.replace``), so a cache directory can
be shared between concurrent runs; a corrupt or truncated entry reads as
a miss, never as an error.

Concurrency and eviction (the long-running-service hardening):

* atomic rename already guarantees readers never observe a torn entry —
  a reader sees either a complete previous value or a complete new one;
* :meth:`ResultCache.lock` adds **per-key in-flight locks** (``flock`` on
  a ``.lock`` sidecar) so cooperating *processes* can serialize the
  compute-then-put window, and :meth:`ResultCache.get_or_compute` wraps
  the whole probe → lock → re-probe → compute → put dance: under N
  contending processes exactly one computes, the rest re-probe and hit;
* ``max_bytes`` turns the cache into an LRU: :meth:`ResultCache.get`
  touches the entry's mtime on every hit, and :meth:`ResultCache.sweep`
  deletes least-recently-used entries until the directory fits the
  budget (``put`` triggers a sweep periodically so a service that runs
  for weeks cannot fill the disk).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from contextlib import contextmanager
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

import numpy as np

from repro.core.base import Codec
from repro.engine.cells import METRIC_CODEC, METRIC_POWER, Cell

#: Source modules shared by every cell metric: the word/codec framework
#: and the transition counters.
_COMMON_MODULES = (
    "repro.core.base",
    "repro.core.word",
    "repro.metrics.transitions",
    "repro.metrics.fast",
)

#: Additional modules whose source determines a power cell's result.
_POWER_MODULES = (
    "repro.rtl.codecs",
    "repro.rtl.netlist",
    "repro.rtl.power",
)

#: Additional modules whose source determines a codec-transitions cell's
#: result: such cells may be computed by either the columnar kernels or
#: the steppable reference path, so a kernel edit must invalidate them.
_CODEC_MODULES = ("repro.core.kernels",)


@lru_cache(maxsize=None)
def _file_digest(path: str) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


@lru_cache(maxsize=None)
def _module_digest(module_name: str) -> str:
    __import__(module_name)
    module = sys.modules[module_name]
    source = getattr(module, "__file__", None)
    if not source:  # pragma: no cover - frozen/namespace modules
        return f"no-source:{module_name}"
    return _file_digest(source)


@lru_cache(maxsize=None)
def _codec_module(codec_name: str) -> Optional[str]:
    """The defining module of a registry codec, resolved by name alone.

    Power cells carry no live :class:`Codec` (their circuits are rebuilt
    by registry name inside the worker), so the codec's source module is
    looked up through the codec registry instead.  Names the registry
    cannot build without extra arguments (the trained beach code) resolve
    to ``None`` and contribute no module — those cells are never cached.
    """
    from repro.core.registry import make_codec

    try:
        built = make_codec(codec_name, 32)
    except Exception:
        return None
    if built.encoder_cls is None:
        return None
    return built.encoder_cls.__module__


def code_version(
    metric: str,
    codec: Optional[Codec] = None,
    codec_name: Optional[str] = None,
) -> str:
    """The code-version tag for one cell's metric/codec combination.

    The codec's defining module is included for **every** metric — a
    power cell's result depends on the codec's semantics just as much as
    a transition cell's, so editing e.g. ``core/t0.py`` must invalidate
    both.  ``codec_name`` resolves the module through the registry when
    no live codec is at hand (power cells identify circuits by name).
    """
    modules = list(_COMMON_MODULES)
    if metric == METRIC_POWER:
        modules.extend(_POWER_MODULES)
    if metric == METRIC_CODEC:
        modules.extend(_CODEC_MODULES)
    if codec is not None and codec.encoder_cls is not None:
        modules.append(codec.encoder_cls.__module__)
    elif codec_name is not None:
        resolved = _codec_module(codec_name)
        if resolved is not None:
            modules.append(resolved)
    digest = hashlib.sha256()
    for name in sorted(set(modules)):
        digest.update(name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(_module_digest(name).encode("ascii"))
        digest.update(b"\0")
    return digest.hexdigest()


def cell_key(cell: Cell, version: str) -> str:
    """Content address of one cell (see the module docstring)."""
    header = json.dumps(
        {
            "metric": cell.metric,
            "codec": cell.codec_name,
            "width": cell.width,
            "params": {key: value for key, value in cell.params},
            "stride": cell.stride,
            "code_version": version,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    digest = hashlib.sha256(header)
    digest.update(b"\0addresses\0")
    digest.update(np.asarray(cell.addresses, dtype="<u8").tobytes())
    digest.update(b"\0sels\0")
    if cell.sels is None:
        digest.update(b"none")
    else:
        digest.update(np.asarray(cell.sels, dtype="<u8").tobytes())
    return digest.hexdigest()


#: ``put`` calls between automatic LRU sweeps (when ``max_bytes`` is set).
_SWEEP_EVERY = 32


class ResultCache:
    """Directory-backed key → JSON payload store.

    ``max_bytes`` bounds the total entry size: when set, the cache
    behaves as an LRU (hits refresh an entry's mtime; :meth:`sweep`
    evicts the stalest entries past the budget, and runs automatically
    every :data:`_SWEEP_EVERY` puts).
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._puts_since_sweep = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload, or None on miss (corrupt entries miss too)."""
        path = self._path(key)
        try:
            raw = path.read_text(encoding="utf-8")
            entry = json.loads(raw)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            return None
        if self.max_bytes is not None:
            try:
                os.utime(path)  # refresh LRU position
            except OSError:  # pragma: no cover - entry evicted mid-read
                pass
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store atomically; concurrent writers of the same key are safe.

        The temp-file + ``os.replace`` scheme means a reader racing any
        number of same-key writers observes either a complete old entry
        or a complete new one, never a torn mix — the property the
        multiprocess stress test in ``tests/test_cache_concurrency.py``
        hammers on.
        """
        target = self._path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps({"key": key, "payload": payload}, sort_keys=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=target.parent, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                tmp.write(body)
            os.replace(tmp_name, target)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._puts_since_sweep += 1
            if self._puts_since_sweep >= _SWEEP_EVERY:
                self.sweep()

    # -- per-key in-flight locking -------------------------------------

    @contextmanager
    def lock(self, key: str) -> Iterator[None]:
        """Serialize cooperating processes working on one key.

        A blocking ``flock`` on a ``.lock`` sidecar next to the entry.
        Purely advisory: ``get``/``put`` never require it (atomic rename
        keeps them safe); the lock exists so concurrent *computations*
        of the same key can be collapsed — see :meth:`get_or_compute`.
        On platforms without ``fcntl`` the lock degrades to a no-op.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = self.root / key[:2] / f"{key}.lock"
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        handle = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(handle, fcntl.LOCK_EX)
            yield
        finally:
            # Releasing before closing is implicit in close(); the lock
            # file itself is left in place (tiny, reused by the next
            # contender — unlinking it would race a concurrent open).
            os.close(handle)

    def get_or_compute(
        self, key: str, compute: Callable[[], Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Serve ``key`` from the cache, computing it at most once.

        Probe, then take the per-key lock and re-probe before computing:
        of N processes racing the same cold key, one computes and puts
        while the rest block on the lock and then hit the fresh entry.
        """
        hit = self.get(key)
        if hit is not None:
            return hit
        with self.lock(key):
            hit = self.get(key)
            if hit is not None:
                return hit
            payload = compute()
            self.put(key, payload)
            return payload

    # -- size accounting and LRU eviction ------------------------------

    def _entries(self) -> List[Tuple[float, int, Path]]:
        """Every entry as ``(mtime, size, path)`` (lock files excluded)."""
        entries: List[Tuple[float, int, Path]] = []
        for path in self.root.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:  # entry evicted by a concurrent sweep
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def size_bytes(self) -> int:
        """Total bytes of stored entries."""
        return sum(size for _, size, _ in self._entries())

    def sweep(self) -> int:
        """Evict least-recently-used entries until under ``max_bytes``.

        Returns the number of entries removed.  A no-op when no budget
        is set.  Concurrent sweeps are safe: a missing file is simply
        skipped (some other process already evicted it).
        """
        self._puts_since_sweep = 0
        if self.max_bytes is None:
            return 0
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return 0
        evicted = 0
        # Oldest mtime first == least recently used first (get() touches).
        for _, size, path in sorted(entries):
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            total -= size
            evicted += 1
        return evicted

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
