"""Content-addressed on-disk result cache for engine cells.

The cache key of a cell is a SHA-256 over

* a canonical JSON header: metric, codec name, bus width, codec
  parameters, in-sequence stride and the **code-version tag**;
* the raw address array bytes (little-endian uint64);
* the raw sel array bytes (or an explicit ``none`` marker).

The code-version tag is itself a SHA-256 over the *source files* that
determine the cell's result: the codec's defining module plus the shared
core/metrics machinery (and the gate-level RTL stack for power cells).
Editing one codec therefore invalidates exactly that codec's cells; the
shared files invalidate everything, which is the conservative and correct
behaviour for a result cache.

Entries are sharded two hex characters deep (``ab/abcdef….json``) and
written atomically (temp file + ``os.replace``), so a cache directory can
be shared between concurrent runs; a corrupt or truncated entry reads as
a miss, never as an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.base import Codec
from repro.engine.cells import METRIC_CODEC, METRIC_POWER, Cell

#: Source modules shared by every cell metric: the word/codec framework
#: and the transition counters.
_COMMON_MODULES = (
    "repro.core.base",
    "repro.core.word",
    "repro.metrics.transitions",
    "repro.metrics.fast",
)

#: Additional modules whose source determines a power cell's result.
_POWER_MODULES = (
    "repro.rtl.codecs",
    "repro.rtl.netlist",
    "repro.rtl.power",
)

#: Additional modules whose source determines a codec-transitions cell's
#: result: such cells may be computed by either the columnar kernels or
#: the steppable reference path, so a kernel edit must invalidate them.
_CODEC_MODULES = ("repro.core.kernels",)


@lru_cache(maxsize=None)
def _file_digest(path: str) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


@lru_cache(maxsize=None)
def _module_digest(module_name: str) -> str:
    __import__(module_name)
    module = sys.modules[module_name]
    source = getattr(module, "__file__", None)
    if not source:  # pragma: no cover - frozen/namespace modules
        return f"no-source:{module_name}"
    return _file_digest(source)


@lru_cache(maxsize=None)
def _codec_module(codec_name: str) -> Optional[str]:
    """The defining module of a registry codec, resolved by name alone.

    Power cells carry no live :class:`Codec` (their circuits are rebuilt
    by registry name inside the worker), so the codec's source module is
    looked up through the codec registry instead.  Names the registry
    cannot build without extra arguments (the trained beach code) resolve
    to ``None`` and contribute no module — those cells are never cached.
    """
    from repro.core.registry import make_codec

    try:
        built = make_codec(codec_name, 32)
    except Exception:
        return None
    if built.encoder_cls is None:
        return None
    return built.encoder_cls.__module__


def code_version(
    metric: str,
    codec: Optional[Codec] = None,
    codec_name: Optional[str] = None,
) -> str:
    """The code-version tag for one cell's metric/codec combination.

    The codec's defining module is included for **every** metric — a
    power cell's result depends on the codec's semantics just as much as
    a transition cell's, so editing e.g. ``core/t0.py`` must invalidate
    both.  ``codec_name`` resolves the module through the registry when
    no live codec is at hand (power cells identify circuits by name).
    """
    modules = list(_COMMON_MODULES)
    if metric == METRIC_POWER:
        modules.extend(_POWER_MODULES)
    if metric == METRIC_CODEC:
        modules.extend(_CODEC_MODULES)
    if codec is not None and codec.encoder_cls is not None:
        modules.append(codec.encoder_cls.__module__)
    elif codec_name is not None:
        resolved = _codec_module(codec_name)
        if resolved is not None:
            modules.append(resolved)
    digest = hashlib.sha256()
    for name in sorted(set(modules)):
        digest.update(name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(_module_digest(name).encode("ascii"))
        digest.update(b"\0")
    return digest.hexdigest()


def cell_key(cell: Cell, version: str) -> str:
    """Content address of one cell (see the module docstring)."""
    header = json.dumps(
        {
            "metric": cell.metric,
            "codec": cell.codec_name,
            "width": cell.width,
            "params": {key: value for key, value in cell.params},
            "stride": cell.stride,
            "code_version": version,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    digest = hashlib.sha256(header)
    digest.update(b"\0addresses\0")
    digest.update(np.asarray(cell.addresses, dtype="<u8").tobytes())
    digest.update(b"\0sels\0")
    if cell.sels is None:
        digest.update(b"none")
    else:
        digest.update(np.asarray(cell.sels, dtype="<u8").tobytes())
    return digest.hexdigest()


class ResultCache:
    """Directory-backed key → JSON payload store."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload, or None on miss (corrupt entries miss too)."""
        try:
            raw = self._path(key).read_text(encoding="utf-8")
            entry = json.loads(raw)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store atomically; concurrent writers of the same key are safe."""
        target = self._path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps({"key": key, "payload": payload}, sort_keys=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=target.parent, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                tmp.write(body)
            os.replace(tmp_name, target)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
