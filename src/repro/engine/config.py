"""Unified execution configuration: one object instead of kwarg sprawl.

Before this module, every layer that could use the batch engine grew its
own knobs — ``compare_codecs(engine=, use_kernels=)``, the table builders'
``engine=``, and the CLI's ``--jobs/--cache/--refresh/--chunk-size``
quartet — which meant a front end (the evaluation service, a notebook, a
script) had to understand the whole stack to configure any of it.

:class:`ExecutionConfig` collapses that surface: it names the four
execution decisions a caller can make (worker count, cache directory,
kernel routing, chunk size) plus the two cache policies (refresh,
max-bytes eviction), validates them once, and builds the
:class:`~repro.engine.runner.BatchEngine` they imply.  The engine is
memoized per config object, so threading **one** config through a whole
run — every table, every row — shares one engine, one cache handle and
one cumulative :class:`~repro.engine.runner.EngineStats`, exactly like
the old pattern of passing a live engine around, without exposing the
engine type to callers.

The evaluation service (:mod:`repro.service`) constructs its engine from
the same object, so ``repro-bus serve`` and ``repro-bus tables`` are
configured by the same flags and produce byte-identical payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.engine.cache import ResultCache
from repro.engine.cells import DEFAULT_CHUNK_SIZE
from repro.engine.runner import BatchEngine


@dataclass
class ExecutionConfig:
    """How cell batches execute: workers, cache, kernels, chunking.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` computes in-process (no fork).
    cache_dir:
        Result cache directory, or None to disable caching.
    kernels:
        Route codec-transitions cells through the columnar numpy kernels
        where one exists; ``False`` forces the steppable reference path
        (output is bit-identical either way).
    chunk_size:
        Addresses per steppable-API chunk inside each worker.
    refresh:
        Recompute every cell and overwrite its cache entry.
    cache_max_bytes:
        Cache size budget; when set, :meth:`ResultCache.sweep` evicts
        least-recently-used entries past it.  None means unbounded.
    """

    jobs: int = 1
    cache_dir: Optional[Union[str, Path]] = None
    kernels: bool = True
    chunk_size: int = DEFAULT_CHUNK_SIZE
    refresh: bool = False
    cache_max_bytes: Optional[int] = None
    _engine: Optional[BatchEngine] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be positive, got {self.jobs}")
        if self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be positive, got {self.chunk_size}"
            )
        if self.cache_max_bytes is not None and self.cache_max_bytes < 1:
            raise ValueError(
                f"cache_max_bytes must be positive, got {self.cache_max_bytes}"
            )

    def engine(self) -> BatchEngine:
        """The (memoized) engine this configuration describes.

        Every call on the same config object returns the same engine, so
        stats accumulate and the cache handle is shared across a run.
        """
        if self._engine is None:
            cache: Optional[ResultCache] = None
            if self.cache_dir is not None:
                cache = ResultCache(
                    self.cache_dir, max_bytes=self.cache_max_bytes
                )
            self._engine = BatchEngine(
                jobs=self.jobs,
                cache_dir=cache,
                chunk_size=self.chunk_size,
                refresh=self.refresh,
                use_kernels=self.kernels,
            )
        return self._engine

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view (manifests, the service's ``/v1/healthz``)."""
        return {
            "jobs": self.jobs,
            "cache_dir": (
                str(self.cache_dir) if self.cache_dir is not None else None
            ),
            "kernels": self.kernels,
            "chunk_size": self.chunk_size,
            "refresh": self.refresh,
            "cache_max_bytes": self.cache_max_bytes,
        }
