"""Batch execution engine: (trace, codec, metric) cells, a multiprocessing
worker pool, and an on-disk content-addressed result cache.

See ``docs/engine.md`` for the job model, the cache-key anatomy and the
chunk-state handoff that the steppable codec API enables.
"""

from repro.engine.cache import ResultCache, cell_key, code_version
from repro.engine.cells import (
    DEFAULT_CHUNK_SIZE,
    METRIC_BINARY,
    METRIC_CODEC,
    METRIC_POWER,
    Cell,
    chunked_encode,
    comparison_cells,
    compute_cell,
    make_cell,
    report_from_payload,
    report_to_payload,
    row_from_results,
)
from repro.engine.config import ExecutionConfig
from repro.engine.runner import BatchEngine, EngineStats

__all__ = [
    "BatchEngine",
    "Cell",
    "DEFAULT_CHUNK_SIZE",
    "EngineStats",
    "ExecutionConfig",
    "METRIC_BINARY",
    "METRIC_CODEC",
    "METRIC_POWER",
    "ResultCache",
    "cell_key",
    "chunked_encode",
    "code_version",
    "comparison_cells",
    "compute_cell",
    "make_cell",
    "report_from_payload",
    "report_to_payload",
    "row_from_results",
]
