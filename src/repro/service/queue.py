"""Bounded FIFO job queue with cross-client dedupe and backpressure.

Job identity is the request's content address
(:func:`~repro.service.protocol.request_key`), so submitting the same
(trace digest, codec roster, metrics) twice — from one client or two —
returns the *same* job.  An in-flight duplicate attaches to the pending
computation; a duplicate of a completed job is served from the retained
result without touching the engine at all.  That retention is the
service-level analogue of the engine's result cache, and the property
the acceptance test pins via ``core.encoded_words``: the second client
causes zero encode work.

Backpressure is admission control, not queue blocking: once
``queued + running`` reaches the high-water mark, *new* job keys are
rejected with :class:`ServiceOverloaded` (HTTP 429 + ``Retry-After``).
Duplicates of already-admitted jobs are always accepted — they add
waiters, not work.

Single event loop, no locks: every method runs on the service's loop.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional, Tuple

from repro.service.protocol import EvalRequest, request_key

STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"

#: Completed jobs retained for dedupe, oldest evicted first.
DEFAULT_RETAIN_DONE = 256


class ServiceOverloaded(Exception):
    """The queue is past its high-water mark; retry after a delay."""

    def __init__(self, pending: int, retry_after: int) -> None:
        super().__init__(
            f"service overloaded: {pending} jobs pending; "
            f"retry after {retry_after}s"
        )
        self.pending = pending
        self.retry_after = retry_after


@dataclass
class Job:
    """One admitted evaluation: identity, state, result, waiters."""

    key: str
    request: EvalRequest
    status: str = STATUS_QUEUED
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    error_status: int = 500
    waiters: int = 1  # submissions that named this job (dedupe counter)
    wall_s: Optional[float] = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def finished(self) -> bool:
        return self.status in (STATUS_DONE, STATUS_FAILED)

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "job_id": self.key,
            "status": self.status,
            "trace_digest": self.request.trace_digest,
            "waiters": self.waiters,
        }
        if self.wall_s is not None:
            payload["wall_s"] = self.wall_s
        if self.status == STATUS_DONE:
            payload["result"] = self.result
        if self.status == STATUS_FAILED:
            payload["error"] = self.error
        return payload


class JobQueue:
    """FIFO admission queue keyed by request content address."""

    def __init__(
        self,
        max_pending: int = 64,
        retry_after: int = 2,
        retain_done: int = DEFAULT_RETAIN_DONE,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        self.max_pending = max_pending
        self.retry_after = retry_after
        self.retain_done = retain_done
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._fifo: Deque[str] = deque()
        self._wakeup = asyncio.Event()

    # -- admission ------------------------------------------------------

    def pending(self) -> int:
        """Jobs admitted but not finished (queued + running)."""
        return sum(1 for job in self._jobs.values() if not job.finished)

    def submit(self, request: EvalRequest) -> Tuple[Job, bool]:
        """Admit a request; returns ``(job, deduped)``.

        Raises :class:`ServiceOverloaded` only for *new* work past the
        high-water mark — duplicates always attach.
        """
        key = request_key(request)
        existing = self._jobs.get(key)
        if existing is not None:
            existing.waiters += 1
            return existing, True
        pending = self.pending()
        if pending >= self.max_pending:
            raise ServiceOverloaded(pending, self.retry_after)
        job = Job(key=key, request=request)
        self._jobs[key] = job
        self._fifo.append(key)
        self._wakeup.set()
        return job, False

    def get(self, key: str) -> Optional[Job]:
        return self._jobs.get(key)

    # -- the worker side ------------------------------------------------

    async def next_job(self) -> Job:
        """Block until a queued job is available, then claim it."""
        while True:
            while self._fifo:
                job = self._jobs[self._fifo.popleft()]
                if job.status == STATUS_QUEUED:
                    job.status = STATUS_RUNNING
                    return job
            self._wakeup.clear()
            await self._wakeup.wait()

    def finish(
        self,
        job: Job,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        error_status: int = 500,
        wall_s: Optional[float] = None,
    ) -> None:
        """Mark a running job done/failed and wake every waiter."""
        if error is None:
            job.status = STATUS_DONE
            job.result = result
        else:
            job.status = STATUS_FAILED
            job.error = error
            job.error_status = error_status
        job.wall_s = wall_s
        job.done_event.set()
        self._evict_done()

    def _evict_done(self) -> None:
        """Cap retained finished jobs (oldest admitted first)."""
        finished = [k for k, job in self._jobs.items() if job.finished]
        excess = len(finished) - self.retain_done
        for key in finished[:excess]:
            del self._jobs[key]

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, int]:
        by_status: Dict[str, int] = {
            STATUS_QUEUED: 0,
            STATUS_RUNNING: 0,
            STATUS_DONE: 0,
            STATUS_FAILED: 0,
        }
        for job in self._jobs.values():
            by_status[job.status] += 1
        return {
            "pending": self.pending(),
            "max_pending": self.max_pending,
            **by_status,
        }
