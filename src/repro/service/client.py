"""Blocking client for the evaluation service (stdlib ``urllib`` only).

The client half of the byte-identity contract:
:func:`table_text_via_service` rebuilds a paper table from served
payloads using the same :data:`~repro.experiments.tables.TABLE_SPECS`
the CLI renders from, so its text diffs clean against
``repro-bus tables N`` — the CI smoke job pins exactly that.

Polling, not push: the service's results are retained and content
addressed, so a poll loop with 429-aware submit retries is all the
sophistication a client needs.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.service.protocol import SCHEMA_VERSION, row_from_payload


class ServiceError(RuntimeError):
    """A non-success response from the service."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(
            f"service returned {status}: {payload.get('error', payload)}"
        )
        self.status = status
        self.payload = payload


class ServiceClient:
    """Thin blocking wrapper over the service's HTTP/JSON API."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round trip; returns ``(status, parsed body)``."""
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        req = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, json.load(resp)
        except urllib.error.HTTPError as error:
            try:
                parsed = json.load(error)
            except ValueError:
                parsed = {"error": error.reason}
            return error.code, parsed

    def _expect(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        ok: Sequence[int] = (200,),
    ) -> Dict[str, Any]:
        status, parsed = self.request(method, path, payload)
        if status not in ok:
            raise ServiceError(status, parsed)
        return parsed

    # -- endpoints ------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._expect("GET", "/v1/healthz")

    def codec_roster(self) -> Dict[str, Any]:
        return self._expect("GET", "/v1/codecs")

    def metrics(self) -> Dict[str, Any]:
        return self._expect("GET", "/v1/metrics")

    def submit_trace(
        self,
        addresses: Sequence[int],
        sels: Optional[Sequence[int]] = None,
    ) -> str:
        """Upload a stream to the corpus; returns its digest."""
        parsed = self._expect(
            "POST",
            "/v1/traces",
            {
                "schema_version": SCHEMA_VERSION,
                "trace": {
                    "addresses": list(addresses),
                    "sels": list(sels) if sels is not None else None,
                },
            },
        )
        digest = parsed["trace_digest"]
        assert isinstance(digest, str)
        return digest

    def submit_job(
        self, payload: Dict[str, Any], max_wait: float = 30.0
    ) -> Dict[str, Any]:
        """Submit a job, retrying on 429 until ``max_wait`` elapses."""
        deadline = time.monotonic() + max_wait
        while True:
            status, parsed = self.request("POST", "/v1/jobs", payload)
            if status == 202:
                return parsed
            if status == 429 and time.monotonic() < deadline:
                time.sleep(min(float(parsed.get("retry_after", 1)), 2.0))
                continue
            raise ServiceError(status, parsed)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._expect("GET", f"/v1/jobs/{job_id}")

    def manifest(self, job_id: str) -> Dict[str, Any]:
        return self._expect("GET", f"/v1/jobs/{job_id}/manifest")

    def wait(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the job finishes; raises :class:`ServiceError` on
        failure or timeout."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["status"] == "done":
                return payload
            if payload["status"] == "failed":
                raise ServiceError(500, payload)
            if time.monotonic() >= deadline:
                raise ServiceError(
                    504, {"error": f"job {job_id} still {payload['status']}"}
                )
            time.sleep(poll)

    def evaluate(
        self, payload: Dict[str, Any], timeout: float = 60.0
    ) -> Dict[str, Any]:
        """Submit and wait; returns the finished job payload."""
        job = self.submit_job(payload, max_wait=timeout)
        return self.wait(job["job_id"], timeout=timeout)

    def shutdown(self) -> Dict[str, Any]:
        return self._expect("POST", "/v1/shutdown")


def _codec_payloads(names: Sequence[str]) -> List[Dict[str, Any]]:
    """The codec specs the table builders construct, as wire payloads.

    Mirrors ``repro.experiments.tables._codecs``: stride-aware codecs get
    the default stride explicitly so the job key is fully canonical.
    """
    specs: List[Dict[str, Any]] = []
    for name in names:
        params = {} if name == "bus-invert" else {"stride": 4}
        specs.append({"name": name, "params": params})
    return specs


def table_text_via_service(
    client: ServiceClient, number: int, length: int = 0
) -> str:
    """Rebuild one paper table from service results — byte-identical to
    the ``repro-bus tables`` stdout for that table."""
    from repro.experiments import TABLE_SPECS, compare_with_paper
    from repro.metrics import PaperTable
    from repro.tracegen import all_traces

    spec = TABLE_SPECS[number]
    table = PaperTable(title=spec.title, codec_names=list(spec.codecs))
    for trace in all_traces(spec.kind, length):
        label = trace.name.split(".")[0]
        finished = client.evaluate(
            {
                "schema_version": SCHEMA_VERSION,
                "codecs": _codec_payloads(spec.codecs),
                "metrics": ["codec-transitions"],
                "width": 32,
                "stride": trace.stride,
                "benchmark": label,
                "trace": {
                    "addresses": list(trace.addresses),
                    "sels": list(trace.effective_sels()),
                },
            }
        )
        table.add(row_from_payload(finished["result"]["row"], benchmark=label))
    return f"{table.render()}\n\n{compare_with_paper(number, table)}\n"
