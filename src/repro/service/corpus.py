"""Content-addressed trace corpus: streams stored and served by digest.

The corpus mirrors the engine cache's layout decisions: entries are
sharded two hex characters deep (``ab/abcdef….json``) and written
atomically (temp file + ``os.replace``), so one corpus directory can
back several service processes.  The digest covers the stream *content*
only — address array bytes plus sel array bytes — never the display
name, width or stride; those are request parameters.  Two tenants
uploading the same stream under different names therefore share one
corpus entry, which is exactly what lets their jobs coalesce.

A corpus constructed without a root directory is memory-backed: handy
for tests and for ``repro-bus serve`` runs that only take inline traces.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np


def trace_digest(
    addresses: Sequence[int], sels: Optional[Sequence[int]] = None
) -> str:
    """The sha256 content address of one stream.

    Same byte discipline as the engine's :func:`~repro.engine.cell_key`:
    little-endian uint64 address bytes, then the sel bytes or an
    explicit ``none`` marker.  Display metadata is excluded by design.
    """
    digest = hashlib.sha256()
    digest.update(b"addresses\0")
    digest.update(np.asarray(addresses, dtype="<u8").tobytes())
    digest.update(b"\0sels\0")
    if sels is None:
        digest.update(b"none")
    else:
        digest.update(np.asarray(sels, dtype="<u8").tobytes())
    return digest.hexdigest()


class TraceCorpus:
    """Digest → stream store, directory-backed or in-memory.

    Stored entries are JSON objects ``{"digest", "addresses", "sels"}``;
    a corrupt or truncated entry reads as a miss, mirroring the result
    cache's contract.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, Tuple[Tuple[int, ...], Optional[Tuple[int, ...]]]] = {}

    def _path(self, digest: str) -> Path:
        assert self.root is not None
        return self.root / digest[:2] / f"{digest}.json"

    def add(
        self,
        addresses: Sequence[int],
        sels: Optional[Sequence[int]] = None,
    ) -> str:
        """Store a stream, returning its digest (idempotent)."""
        digest = trace_digest(addresses, sels)
        entry = (
            tuple(addresses),
            tuple(sels) if sels is not None else None,
        )
        if self.root is None:
            self._memory[digest] = entry
            return digest
        target = self._path(digest)
        if target.is_file():
            return digest
        target.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps(
            {
                "digest": digest,
                "addresses": list(entry[0]),
                "sels": list(entry[1]) if entry[1] is not None else None,
            }
        )
        handle, tmp_name = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                tmp.write(body)
            os.replace(tmp_name, target)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return digest

    def get(
        self, digest: str
    ) -> Optional[Tuple[Tuple[int, ...], Optional[Tuple[int, ...]]]]:
        """The stored ``(addresses, sels)``, or None on miss."""
        if self.root is None:
            return self._memory.get(digest)
        try:
            entry = json.loads(self._path(digest).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            return None
        addresses = entry.get("addresses")
        if not isinstance(addresses, list) or not addresses:
            return None
        sels = entry.get("sels")
        return (
            tuple(addresses),
            tuple(sels) if sels is not None else None,
        )

    def __contains__(self, digest: str) -> bool:
        return self.get(digest) is not None

    def __len__(self) -> int:
        if self.root is None:
            return len(self._memory)
        return sum(1 for _ in self.root.glob("*/*.json"))

    def digests(self) -> Iterator[str]:
        if self.root is None:
            yield from sorted(self._memory)
            return
        for path in sorted(self.root.glob("*/*.json")):
            yield path.stem
