"""Minimal stdlib HTTP/1.1 transport for the evaluation service.

Deliberately small: one request per connection (``Connection: close``),
JSON bodies only, no chunked encoding, no TLS.  The transport knows
nothing about routes — it parses a request into ``(method, path, body)``
and hands it to an async handler that returns
``(status, payload, extra_headers)``.  Anything the handler raises
becomes a 500 with a JSON error body; malformed requests never reach
the handler.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

#: status, JSON payload, extra headers.
Response = Tuple[int, Dict[str, Any], Dict[str, str]]
Handler = Callable[[str, str, bytes], Awaitable[Response]]

#: Request bodies past this size are rejected up front (413).
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def json_response(
    status: int,
    payload: Dict[str, Any],
    headers: Optional[Dict[str, str]] = None,
) -> Response:
    return status, payload, dict(headers or {})


def _encode(status: int, payload: Dict[str, Any], headers: Dict[str, str]) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in sorted(headers.items()))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, bytes]:
    """Parse one request; raises ValueError on anything malformed."""
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionError("client closed before sending a request")
    parts = request_line.decode("ascii", "replace").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError(f"malformed request line: {request_line!r}")
    method, target = parts[0].upper(), parts[1]

    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError as error:
                raise ValueError(f"bad Content-Length: {value!r}") from error
    if content_length > MAX_BODY_BYTES:
        raise ValueError(f"body of {content_length} bytes exceeds the limit")
    body = (
        await reader.readexactly(content_length) if content_length else b""
    )
    return method, target, body


async def serve_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    handler: Handler,
) -> None:
    """One connection: read a request, dispatch, respond, close."""
    try:
        try:
            method, target, body = await _read_request(reader)
        except ConnectionError:
            return
        except (ValueError, asyncio.IncompleteReadError) as error:
            writer.write(_encode(400, {"error": str(error)}, {}))
            await writer.drain()
            return
        try:
            status, payload, headers = await handler(method, target, body)
        except Exception as error:  # noqa: BLE001 - the transport firewall
            status, payload, headers = 500, {"error": str(error)}, {}
        writer.write(_encode(status, payload, headers))
        await writer.drain()
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_http_server(
    handler: Handler, host: str, port: int
) -> asyncio.AbstractServer:
    """Bind and return the listening server (caller owns its lifetime)."""

    async def on_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await serve_connection(reader, writer, handler)

    return await asyncio.start_server(on_connection, host=host, port=port)
