"""The service's versioned request/response schema.

Every payload the service accepts or returns carries
``schema_version`` = :data:`SCHEMA_VERSION`; a version the server does
not speak is rejected up front (a client from the future should fail
loudly, not silently misparse).  Parsing is strict: unknown fields,
wrong types and out-of-range values all raise :class:`ProtocolError`
with an HTTP status attached, so the transport layer can translate
without string-matching.

The job identity rule lives here too: :func:`request_key` hashes the
*canonical* request — schema version, trace digest, width, stride,
sorted codec specs, sorted metrics — and deliberately excludes the
display label (``benchmark``).  Two clients naming the same stream
differently still collapse to one computation; the label is overlaid
client-side (:func:`row_from_payload` accepts an override).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.engine.cells import (
    METRIC_CODEC,
    METRIC_POWER,
    report_from_payload,
    report_to_payload,
)
from repro.metrics.report import CodecResult, ComparisonRow

#: The one schema version this server speaks.
SCHEMA_VERSION = 1

#: Metrics a request may ask for.  ``codec-transitions`` computes a full
#: comparison row (binary reference included); ``power-sim`` runs the
#: gate-level encoder/decoder circuits per codec.
REQUEST_METRICS = (METRIC_CODEC, METRIC_POWER)

#: Codecs the service refuses: their constructor params do not determine
#: their behaviour (the beach code is trained on stream data), so a
#: content-addressed job key cannot identify their results.
UNSERVABLE_CODECS = ("beach",)


class ProtocolError(ValueError):
    """A malformed or unserviceable request, with its HTTP translation."""

    def __init__(self, message: str, http_status: int = 400) -> None:
        super().__init__(message)
        self.http_status = http_status

    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "error": str(self),
            "status": self.http_status,
        }


@dataclass(frozen=True)
class CodecSpec:
    """One codec the request evaluates: registry name + constructor params."""

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def to_payload(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_payload(cls, payload: Any) -> "CodecSpec":
        if isinstance(payload, str):
            return cls(name=payload)
        if not isinstance(payload, Mapping):
            raise ProtocolError(
                f"codec spec must be a name or object, got {type(payload).__name__}"
            )
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ProtocolError("codec spec needs a non-empty 'name'")
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise ProtocolError(f"codec {name!r}: 'params' must be an object")
        for key, value in params.items():
            if not isinstance(value, (int, float, str, bool)):
                raise ProtocolError(
                    f"codec {name!r}: param {key!r} must be a scalar"
                )
        return cls(name=name, params=tuple(sorted(params.items())))


@dataclass(frozen=True)
class EvalRequest:
    """A parsed, validated evaluation request.

    Exactly one of ``addresses`` (inline trace) or ``trace_digest``
    (corpus reference) is set after :func:`parse_request`; the service
    registers inline traces into its corpus before queueing, so a job's
    identity is always digest-based.
    """

    codecs: Tuple[CodecSpec, ...]
    metrics: Tuple[str, ...]
    width: int = 32
    stride: int = 4
    benchmark: str = ""  # display label only — never part of the job key
    trace_digest: Optional[str] = None
    addresses: Optional[Tuple[int, ...]] = None
    sels: Optional[Tuple[int, ...]] = field(default=None)

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "codecs": [spec.to_payload() for spec in self.codecs],
            "metrics": list(self.metrics),
            "width": self.width,
            "stride": self.stride,
            "benchmark": self.benchmark,
        }
        if self.trace_digest is not None:
            payload["trace_digest"] = self.trace_digest
        if self.addresses is not None:
            payload["trace"] = {
                "addresses": list(self.addresses),
                "sels": list(self.sels) if self.sels is not None else None,
            }
        return payload


_REQUEST_FIELDS = frozenset(
    {
        "schema_version",
        "codecs",
        "metrics",
        "width",
        "stride",
        "benchmark",
        "trace",
        "trace_digest",
    }
)


def _check_version(payload: Mapping[str, Any]) -> None:
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ProtocolError(
            f"unsupported schema_version {version!r} "
            f"(this server speaks {SCHEMA_VERSION})",
        )


def _parse_addresses(trace: Mapping[str, Any]) -> Tuple[Tuple[int, ...], Optional[Tuple[int, ...]]]:
    addresses = trace.get("addresses")
    if not isinstance(addresses, list) or not addresses:
        raise ProtocolError("inline trace needs a non-empty 'addresses' list")
    if not all(isinstance(a, int) and a >= 0 for a in addresses):
        raise ProtocolError("'addresses' must be non-negative integers")
    sels = trace.get("sels")
    if sels is not None:
        if not isinstance(sels, list) or len(sels) != len(addresses):
            raise ProtocolError(
                "'sels' must be a list the same length as 'addresses'"
            )
        if not all(isinstance(s, int) and s in (0, 1) for s in sels):
            raise ProtocolError("'sels' entries must be 0 or 1")
    return tuple(addresses), tuple(sels) if sels is not None else None


def parse_request(payload: Any) -> EvalRequest:
    """Validate a raw JSON request body into an :class:`EvalRequest`."""
    if not isinstance(payload, Mapping):
        raise ProtocolError("request body must be a JSON object")
    _check_version(payload)
    unknown = set(payload) - _REQUEST_FIELDS
    if unknown:
        raise ProtocolError(
            f"unknown request field(s): {', '.join(sorted(unknown))}"
        )

    raw_codecs = payload.get("codecs")
    if not isinstance(raw_codecs, list) or not raw_codecs:
        raise ProtocolError("request needs a non-empty 'codecs' list")
    codecs = tuple(CodecSpec.from_payload(entry) for entry in raw_codecs)
    for spec in codecs:
        if spec.name in UNSERVABLE_CODECS:
            raise ProtocolError(
                f"codec {spec.name!r} is trained on stream data and cannot "
                "be served (its params do not determine its behaviour)",
                http_status=422,
            )

    raw_metrics = payload.get("metrics", [METRIC_CODEC])
    if not isinstance(raw_metrics, list) or not raw_metrics:
        raise ProtocolError("'metrics' must be a non-empty list")
    bad = [m for m in raw_metrics if m not in REQUEST_METRICS]
    if bad:
        raise ProtocolError(
            f"unknown metric(s): {', '.join(map(repr, bad))} "
            f"(known: {', '.join(REQUEST_METRICS)})"
        )
    metrics = tuple(dict.fromkeys(raw_metrics))  # dedupe, keep order

    width = payload.get("width", 32)
    stride = payload.get("stride", 4)
    if not isinstance(width, int) or not 1 <= width <= 64:
        raise ProtocolError(f"'width' must be an integer in [1, 64], got {width!r}")
    if not isinstance(stride, int) or stride < 1:
        raise ProtocolError(f"'stride' must be a positive integer, got {stride!r}")

    benchmark = payload.get("benchmark", "")
    if not isinstance(benchmark, str):
        raise ProtocolError("'benchmark' must be a string")

    trace = payload.get("trace")
    digest = payload.get("trace_digest")
    if (trace is None) == (digest is None):
        raise ProtocolError(
            "request needs exactly one of 'trace' (inline) or 'trace_digest'"
        )
    addresses: Optional[Tuple[int, ...]] = None
    sels: Optional[Tuple[int, ...]] = None
    if trace is not None:
        if not isinstance(trace, Mapping):
            raise ProtocolError("'trace' must be an object")
        addresses, sels = _parse_addresses(trace)
    else:
        if not isinstance(digest, str) or len(digest) != 64:
            raise ProtocolError(
                "'trace_digest' must be a 64-hex-character sha256"
            )
        digest = digest.lower()

    return EvalRequest(
        codecs=codecs,
        metrics=metrics,
        width=width,
        stride=stride,
        benchmark=benchmark,
        trace_digest=digest,
        addresses=addresses,
        sels=sels,
    )


def request_key(request: EvalRequest) -> str:
    """The job identity: sha256 over the canonical digest-based request.

    Requires ``trace_digest`` (the service registers inline traces into
    its corpus first).  The display label is excluded — see the module
    docstring.
    """
    if request.trace_digest is None:
        raise ValueError("request_key needs a digest-resolved request")
    canonical = json.dumps(
        {
            "schema_version": SCHEMA_VERSION,
            "trace_digest": request.trace_digest,
            "width": request.width,
            "stride": request.stride,
            "codecs": [
                {"name": spec.name, "params": dict(spec.params)}
                for spec in request.codecs
            ],
            "metrics": sorted(request.metrics),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# ComparisonRow <-> JSON payload (full fidelity, deterministic)
# ---------------------------------------------------------------------------


def row_to_payload(row: ComparisonRow) -> Dict[str, Any]:
    """Serialize a row losslessly (floats round-trip exactly via JSON)."""
    return {
        "benchmark": row.benchmark,
        "length": row.length,
        "in_sequence": row.in_sequence,
        "binary_transitions": row.binary_transitions,
        "results": [
            {
                "name": result.name,
                "transitions": result.transitions,
                "savings": result.savings,
                "report": report_to_payload(result.report),
            }
            for result in row.results
        ],
    }


def row_from_payload(
    payload: Mapping[str, Any], benchmark: Optional[str] = None
) -> ComparisonRow:
    """Rebuild the exact :class:`ComparisonRow` a service job computed.

    ``benchmark`` overlays the client's own display label — the served
    payload carries the label of whichever request computed the row,
    which may be another tenant's name for the same stream.
    """
    results: List[CodecResult] = []
    for entry in payload["results"]:
        results.append(
            CodecResult(
                name=entry["name"],
                transitions=entry["transitions"],
                savings=entry["savings"],
                report=report_from_payload(entry["report"]),
            )
        )
    return ComparisonRow(
        benchmark=(
            benchmark if benchmark is not None else payload["benchmark"]
        ),
        length=payload["length"],
        in_sequence=payload["in_sequence"],
        binary_transitions=payload["binary_transitions"],
        results=tuple(results),
    )


def make_codecs(request: EvalRequest) -> List[Any]:
    """Build the live codecs a request names (raises :class:`ProtocolError`
    on unknown names or bad params)."""
    from repro.core.registry import available_codecs, make_codec

    built = []
    for spec in request.codecs:
        if spec.name not in available_codecs():
            raise ProtocolError(
                f"unknown codec {spec.name!r} "
                f"(see GET /v1/codecs for the roster)",
                http_status=422,
            )
        try:
            built.append(
                make_codec(spec.name, request.width, **dict(spec.params))
            )
        except (TypeError, ValueError) as error:
            raise ProtocolError(
                f"cannot build codec {spec.name!r}: {error}", http_status=422
            ) from error
    return built
