"""Codec-evaluation service: an async API over the sharded batch engine.

The batch reproduction regenerates the paper's tables as one-shot runs;
this package serves the same computations as a long-running system.  A
client submits an address trace — inline, or by sha256 digest against
the service's content-addressed trace corpus — plus a codec roster, and
the service shards the resulting (trace, codec, metric) cells across the
existing :class:`~repro.engine.BatchEngine`.  Identical in-flight work
coalesces across clients (same stream digest + codec roster = one
computation, many waiters), a bounded job queue applies backpressure
past a high-water mark, and result payloads are deterministic —
byte-identical to the batch path's rows.

Layers (stdlib only, no framework):

* :mod:`repro.service.protocol` — the versioned request/response schema;
* :mod:`repro.service.corpus`   — the content-addressed trace store;
* :mod:`repro.service.queue`    — bounded FIFO job queue with dedupe;
* :mod:`repro.service.app`      — the asyncio service + HTTP routing;
* :mod:`repro.service.http`     — a minimal HTTP/1.1 transport;
* :mod:`repro.service.client`   — a blocking urllib client.

See ``docs/service.md`` for endpoints and semantics; ``repro-bus serve``
is the CLI entry point.
"""

from repro.service.app import EvaluationService, run_server
from repro.service.client import ServiceClient, table_text_via_service
from repro.service.corpus import TraceCorpus, trace_digest
from repro.service.protocol import (
    SCHEMA_VERSION,
    CodecSpec,
    EvalRequest,
    ProtocolError,
    parse_request,
    request_key,
    row_from_payload,
    row_to_payload,
)
from repro.service.queue import Job, JobQueue, ServiceOverloaded

__all__ = [
    "CodecSpec",
    "EvalRequest",
    "EvaluationService",
    "Job",
    "JobQueue",
    "ProtocolError",
    "SCHEMA_VERSION",
    "ServiceClient",
    "ServiceOverloaded",
    "TraceCorpus",
    "parse_request",
    "request_key",
    "row_from_payload",
    "row_to_payload",
    "run_server",
    "table_text_via_service",
    "trace_digest",
]
