"""The asyncio evaluation service: routing, the worker loop, manifests.

Execution model — one event loop, one engine, one compute lane:

* HTTP handlers run on the loop and only touch loop-owned state (the
  job queue, the corpus, counters), so admission and dedupe need no
  locks;
* a single worker coroutine drains the queue FIFO and runs each job's
  cell batch on a one-thread executor, so the shared
  :class:`~repro.engine.BatchEngine` (whose own ``--jobs`` pool is the
  real parallelism) is never entered concurrently;
* results are deterministic payloads — the exact rows the batch path
  produces — so a served row diffs byte-identically against
  ``repro-bus tables`` output (the CI smoke gate does exactly this).

Construct the service *on* the event loop that will run it (its asyncio
primitives bind to the running loop); :func:`run_server` does this for
the CLI.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Dict, Optional, Tuple

from repro.engine import ExecutionConfig, comparison_cells, make_cell, row_from_results
from repro.engine.cells import METRIC_CODEC, METRIC_POWER
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span as obs_span
from repro.service.corpus import TraceCorpus
from repro.service.http import Response, json_response, start_http_server
from repro.service.protocol import (
    SCHEMA_VERSION,
    UNSERVABLE_CODECS,
    EvalRequest,
    ProtocolError,
    make_codecs,
    parse_request,
    row_to_payload,
)
from repro.service.queue import Job, JobQueue, ServiceOverloaded


def _stats_view(stats: Any) -> Dict[str, Any]:
    return {
        "cells": stats.cells,
        "hits": stats.hits,
        "misses": stats.misses,
        "uncacheable": stats.uncacheable,
    }


def _stats_delta(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    return {name: after[name] - before[name] for name in before}


class EvaluationService:
    """The service state machine, transport-agnostic.

    ``submit``/``job_payload``/``manifest`` are the API the HTTP layer
    (and the direct in-process tests) call; ``start``/``stop`` own the
    worker coroutine.
    """

    def __init__(
        self,
        config: Optional[ExecutionConfig] = None,
        corpus: Optional[TraceCorpus] = None,
        max_pending: int = 64,
        retry_after: int = 2,
    ) -> None:
        self.config = config if config is not None else ExecutionConfig()
        self.corpus = corpus if corpus is not None else TraceCorpus()
        self.queue = JobQueue(max_pending=max_pending, retry_after=retry_after)
        self.shutdown_event = asyncio.Event()
        self._manifests: Dict[str, Dict[str, Any]] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-compute"
        )
        self._worker_task: Optional["asyncio.Task[None]"] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        if self._worker_task is None:
            self._worker_task = asyncio.get_running_loop().create_task(
                self._worker()
            )

    async def stop(self) -> None:
        if self._worker_task is not None:
            self._worker_task.cancel()
            try:
                await self._worker_task
            except asyncio.CancelledError:
                pass
            self._worker_task = None
        self._executor.shutdown(wait=True)

    # -- admission (called from handlers and tests) ---------------------

    def submit(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """Admit one raw request body; returns ``(http_status, response)``."""
        obs_metrics.counter("service.requests", endpoint="jobs").inc()
        request = parse_request(payload)
        request = self._resolve_trace(request)
        make_codecs(request)  # fail unknown/unbuildable codecs at admission
        if METRIC_POWER in request.metrics:
            from repro.rtl.codecs import ENCODER_BUILDERS

            missing = [
                spec.name
                for spec in request.codecs
                if spec.name not in ENCODER_BUILDERS
            ]
            if missing:
                raise ProtocolError(
                    f"no gate-level circuit for codec(s): "
                    f"{', '.join(sorted(set(missing)))} "
                    f"(power-sim serves: {', '.join(sorted(ENCODER_BUILDERS))})",
                    http_status=422,
                )
        try:
            job, deduped = self.queue.submit(request)
        except ServiceOverloaded as error:
            obs_metrics.counter("service.rejected").inc()
            raise error
        if deduped:
            obs_metrics.counter("service.dedup_hits").inc()
        else:
            obs_metrics.counter("service.jobs_admitted").inc()
        obs_metrics.gauge("service.pending_jobs").set(self.queue.pending())
        response = job.to_payload()
        response["schema_version"] = SCHEMA_VERSION
        response["deduped"] = deduped
        return 202, response

    def _resolve_trace(self, request: EvalRequest) -> EvalRequest:
        """Register inline traces; verify digest references exist."""
        if request.addresses is not None:
            digest = self.corpus.add(request.addresses, request.sels)
            return replace(request, trace_digest=digest)
        assert request.trace_digest is not None
        if request.trace_digest not in self.corpus:
            raise ProtocolError(
                f"unknown trace digest {request.trace_digest!r} "
                "(upload it via POST /v1/traces first)",
                http_status=404,
            )
        return request

    def add_trace(self, payload: Any) -> Dict[str, Any]:
        """POST /v1/traces body → corpus registration."""
        obs_metrics.counter("service.requests", endpoint="traces").inc()
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        if payload.get("schema_version") != SCHEMA_VERSION:
            raise ProtocolError(
                f"unsupported schema_version {payload.get('schema_version')!r} "
                f"(this server speaks {SCHEMA_VERSION})"
            )
        trace = payload.get("trace")
        if not isinstance(trace, dict):
            raise ProtocolError("request needs a 'trace' object")
        from repro.service.protocol import _parse_addresses

        addresses, sels = _parse_addresses(trace)
        digest = self.corpus.add(addresses, sels)
        return {
            "schema_version": SCHEMA_VERSION,
            "trace_digest": digest,
            "length": len(addresses),
        }

    # -- the worker -----------------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self.queue.next_job()
            obs_metrics.gauge("service.pending_jobs").set(self.queue.pending())
            started = time.perf_counter()
            before = _stats_view(self.config.engine().stats)
            try:
                result = await loop.run_in_executor(
                    self._executor, self._compute, job.request
                )
            except ProtocolError as error:
                wall_s = time.perf_counter() - started
                self.queue.finish(
                    job,
                    error=str(error),
                    error_status=error.http_status,
                    wall_s=wall_s,
                )
                obs_metrics.counter("service.job_failures").inc()
            except Exception as error:  # noqa: BLE001 - job isolation
                wall_s = time.perf_counter() - started
                self.queue.finish(
                    job,
                    error=f"{type(error).__name__}: {error}",
                    wall_s=wall_s,
                )
                obs_metrics.counter("service.job_failures").inc()
            else:
                wall_s = time.perf_counter() - started
                self.queue.finish(job, result=result, wall_s=wall_s)
                obs_metrics.counter("service.jobs_completed").inc()
                obs_metrics.histogram("service.job_wall_us").observe(
                    wall_s * 1e6
                )
                self._manifests[job.key] = self._manifest(
                    job, before, _stats_view(self.config.engine().stats)
                )
            obs_metrics.gauge("service.pending_jobs").set(self.queue.pending())

    def _compute(self, request: EvalRequest) -> Dict[str, Any]:
        """One job's full computation (runs on the executor thread)."""
        assert request.trace_digest is not None
        stored = self.corpus.get(request.trace_digest)
        if stored is None:  # corpus entry evicted between admit and run
            raise ProtocolError(
                f"trace {request.trace_digest!r} vanished from the corpus",
                http_status=404,
            )
        addresses, sels = stored
        codecs = make_codecs(request)
        engine = self.config.engine()
        result: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "trace_digest": request.trace_digest,
            "benchmark": request.benchmark,
        }
        with obs_span(
            "service-job",
            digest=request.trace_digest[:12],
            cycles=len(addresses),
        ):
            if METRIC_CODEC in request.metrics:
                cells = comparison_cells(
                    codecs,
                    addresses,
                    sels,
                    stride=request.stride,
                    benchmark=request.benchmark,
                )
                payloads = engine.run(
                    cells, codecs={codec.name: codec for codec in codecs}
                )
                row = row_from_results(
                    codecs,
                    payloads,
                    len(addresses),
                    benchmark=request.benchmark,
                )
                result["row"] = row_to_payload(row)
            if METRIC_POWER in request.metrics:
                power_cells = [
                    make_cell(
                        METRIC_POWER,
                        request.benchmark,
                        addresses,
                        sels,
                        width=request.width,
                        codec_name=spec.name,
                    )
                    for spec in request.codecs
                ]
                payloads = engine.run(power_cells)
                result["power"] = {
                    spec.name: payload
                    for spec, payload in zip(request.codecs, payloads)
                }
        return result

    def _manifest(
        self,
        job: Job,
        stats_before: Dict[str, Any],
        stats_after: Dict[str, Any],
    ) -> Dict[str, Any]:
        result_text = json.dumps(job.result, sort_keys=True)
        return {
            "schema_version": SCHEMA_VERSION,
            "job_id": job.key,
            "trace_digest": job.request.trace_digest,
            "metrics": list(job.request.metrics),
            "codecs": [spec.name for spec in job.request.codecs],
            "engine": _stats_delta(stats_before, stats_after),
            "result_sha256": hashlib.sha256(
                result_text.encode("utf-8")
            ).hexdigest(),
        }

    # -- HTTP routing ---------------------------------------------------

    async def handle(self, method: str, path: str, body: bytes) -> Response:
        try:
            return await self._route(method, path, body)
        except ServiceOverloaded as error:
            return json_response(
                429,
                {
                    "schema_version": SCHEMA_VERSION,
                    "error": str(error),
                    "retry_after": error.retry_after,
                },
                {"Retry-After": str(error.retry_after)},
            )
        except ProtocolError as error:
            return json_response(error.http_status, error.to_payload())

    async def _route(self, method: str, path: str, body: bytes) -> Response:
        if path == "/v1/healthz" and method == "GET":
            return json_response(200, self.health())
        if path == "/v1/codecs" and method == "GET":
            return json_response(200, self.codec_roster())
        if path == "/v1/metrics" and method == "GET":
            obs_metrics.counter("service.requests", endpoint="metrics").inc()
            return json_response(
                200,
                {
                    "schema_version": SCHEMA_VERSION,
                    "metrics": obs_metrics.snapshot(),
                },
            )
        if path == "/v1/traces" and method == "POST":
            return json_response(200, self.add_trace(_parse_body(body)))
        if path.startswith("/v1/traces/") and method == "GET":
            digest = path[len("/v1/traces/") :]
            stored = self.corpus.get(digest)
            if stored is None:
                raise ProtocolError(
                    f"unknown trace digest {digest!r}", http_status=404
                )
            return json_response(
                200,
                {
                    "schema_version": SCHEMA_VERSION,
                    "trace_digest": digest,
                    "length": len(stored[0]),
                    "has_sels": stored[1] is not None,
                },
            )
        if path == "/v1/jobs" and method == "POST":
            status, payload = self.submit(_parse_body(body))
            return json_response(status, payload)
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/") :]
            if rest.endswith("/manifest"):
                return json_response(200, self.manifest(rest[: -len("/manifest")]))
            return json_response(200, self.job_payload(rest))
        if path == "/v1/shutdown" and method == "POST":
            self.shutdown_event.set()
            return json_response(
                200, {"schema_version": SCHEMA_VERSION, "status": "shutting-down"}
            )
        raise ProtocolError(
            f"no route for {method} {path}",
            http_status=404 if method == "GET" else 405,
        )

    def health(self) -> Dict[str, Any]:
        obs_metrics.counter("service.requests", endpoint="healthz").inc()
        return {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "config": self.config.to_dict(),
            "queue": self.queue.stats(),
            "corpus_traces": len(self.corpus),
        }

    def codec_roster(self) -> Dict[str, Any]:
        from repro.core.registry import available_codecs

        obs_metrics.counter("service.requests", endpoint="codecs").inc()
        return {
            "schema_version": SCHEMA_VERSION,
            "codecs": [
                name
                for name in available_codecs()
                if name not in UNSERVABLE_CODECS
            ],
            "metrics": [METRIC_CODEC, METRIC_POWER],
        }

    def job_payload(self, job_id: str) -> Dict[str, Any]:
        obs_metrics.counter("service.requests", endpoint="jobs").inc()
        job = self.queue.get(job_id)
        if job is None:
            raise ProtocolError(f"unknown job {job_id!r}", http_status=404)
        payload = job.to_payload()
        payload["schema_version"] = SCHEMA_VERSION
        return payload

    def manifest(self, job_id: str) -> Dict[str, Any]:
        obs_metrics.counter("service.requests", endpoint="manifest").inc()
        manifest = self._manifests.get(job_id)
        if manifest is None:
            job = self.queue.get(job_id)
            if job is None:
                raise ProtocolError(f"unknown job {job_id!r}", http_status=404)
            raise ProtocolError(
                f"job {job_id!r} has no manifest yet (status: {job.status})",
                http_status=404,
            )
        return manifest


def _parse_body(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"request body is not valid JSON: {error}") from error


async def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    config: Optional[ExecutionConfig] = None,
    corpus: Optional[TraceCorpus] = None,
    max_pending: int = 64,
    ready: Optional["asyncio.Event"] = None,
) -> None:
    """Run the service until ``POST /v1/shutdown`` (or cancellation).

    Builds the service on the running loop, binds the HTTP transport,
    and tears both down cleanly.  ``ready`` (if given) is set once the
    socket is listening — the smoke script and tests key off it.
    """
    service = EvaluationService(
        config=config, corpus=corpus, max_pending=max_pending
    )
    await service.start()
    server = await start_http_server(service.handle, host, port)
    bound = server.sockets[0].getsockname() if server.sockets else (host, port)
    print(f"repro-bus serve: listening on http://{bound[0]}:{bound[1]}")
    if ready is not None:
        ready.set()
    try:
        await service.shutdown_event.wait()
    finally:
        server.close()
        await server.wait_closed()
        await service.stop()
