"""repro — reproduction of *Address Bus Encoding Techniques for System-Level
Power Optimization* (Benini, De Micheli, Macii, Sciuto, Silvano — DATE 1998).

The package implements:

* the paper's bus encodings (T0, bus-invert, T0_BI, dual T0, dual T0_BI) and
  the baselines it compares against (binary, Gray, Beach/working-zone style),
  in :mod:`repro.core`;
* switching-activity metrics and reporting in :mod:`repro.metrics`;
* analytical and capacitive bus power models in :mod:`repro.power`;
* a gate-level substrate (netlists, logic simulation, toggle/probabilistic
  power estimation, codec hardware, I/O pads) in :mod:`repro.rtl`;
* a MIPS-like trace substrate (ISA, assembler, CPU simulator, synthetic
  benchmark profiles, instruction/data multiplexing) in :mod:`repro.tracegen`;
* memory-side models (memory controller with in-place decoding, caches) in
  :mod:`repro.memory`;
* a Panda–Dutt style memory-mapping baseline in :mod:`repro.mapping`.

Quickstart
----------

>>> from repro import make_codec, count_transitions, encode_stream
>>> from repro.tracegen import synthetic_instruction_stream
>>> trace = synthetic_instruction_stream(length=1000, seed=1)
>>> codec = make_codec("t0", width=32, stride=4)
>>> words = encode_stream(codec, trace.addresses)
>>> count_transitions(words).total > 0
True
"""

from repro.core import (
    BusDecoder,
    BusEncoder,
    Codec,
    CodecState,
    EncodedWord,
    available_codecs,
    decode_stream,
    encode_stream,
    make_codec,
    verify_roundtrip,
)
from repro.metrics import (
    TransitionReport,
    count_transitions,
    in_sequence_fraction,
    stream_statistics,
)
from repro.power import BusPowerModel, bus_energy, bus_power

__version__ = "1.0.0"

__all__ = [
    "BusDecoder",
    "BusEncoder",
    "BusPowerModel",
    "Codec",
    "CodecState",
    "EncodedWord",
    "TransitionReport",
    "available_codecs",
    "bus_energy",
    "bus_power",
    "count_transitions",
    "decode_stream",
    "encode_stream",
    "in_sequence_fraction",
    "make_codec",
    "stream_statistics",
    "verify_roundtrip",
    "__version__",
]
