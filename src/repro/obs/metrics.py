"""Process-global metrics: counters, gauges and histograms.

Unlike tracing (off by default), metrics are **always on**: instruments
are plain objects with an attribute update per observation, cheap enough
for the paths they sit on (one update per stream, per solver run, per
fixpoint — never per address or per BDD apply; the one exception, BDD
node allocation, bumps ``Counter.value`` inline without a method call).

Instruments are identified by ``(name, labels)`` and created on first
use; module-level callers cache the returned object, so
:meth:`Registry.reset` zeroes values in place rather than discarding
instruments.  :meth:`Registry.snapshot` returns a JSON-ready dict — the
payload of ``repro-bus --stats``, the ``metrics`` block of
``repro-bus prove --json`` and the counter section of run manifests.

The counter catalog lives in ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing count (resettable)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Summary statistics plus power-of-two magnitude buckets.

    ``buckets[i]`` counts observations with ``2**(i-1) <= v < 2**i``
    (``buckets[0]`` holds ``v < 1``); enough resolution to tell a
    100-node BDD from a 100k-node one without storing samples.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max", "buckets")

    N_BUCKETS = 40

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self._zero()

    def _zero(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * self.N_BUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = max(0, min(self.N_BUCKETS - 1, int(value).bit_length()))
        self.buckets[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Monotone right-edge interpolation: the rank ``q * count`` is
        located in the cumulative bucket counts and interpolated linearly
        between the containing bucket's edges ``[2**(i-1), 2**i)``
        (``[0, 1)`` for bucket 0), then clamped to the observed
        ``[min, max]`` range.  The estimate is a conservative upper
        bound within one power of two of the true quantile (a lone
        observation is recovered exactly via the clamp), and
        ``percentile`` is non-decreasing in ``q`` by construction.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lo = 0.0 if index == 0 else float(1 << (index - 1))
                hi = float(1 << index)
                fraction = (target - cumulative) / bucket_count
                value = lo + (hi - lo) * max(0.0, fraction)
                return max(self.min, min(self.max, value))
            cumulative += bucket_count
        return self.max  # pragma: no cover - only if counts drifted


class Registry:
    """Get-or-create instrument store with snapshot and in-place reset."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1])
        return instrument

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """JSON-ready state of every instrument matching ``prefix``."""

        def entry(instrument: Any) -> Dict[str, Any]:
            base: Dict[str, Any] = {"name": instrument.name}
            if instrument.labels:
                base["labels"] = dict(instrument.labels)
            return base

        counters: List[Dict[str, Any]] = []
        for instrument in self._counters.values():
            if instrument.name.startswith(prefix):
                counters.append({**entry(instrument), "value": instrument.value})
        gauges: List[Dict[str, Any]] = []
        for instrument in self._gauges.values():
            if instrument.name.startswith(prefix):
                gauges.append({**entry(instrument), "value": instrument.value})
        histograms: List[Dict[str, Any]] = []
        for instrument in self._histograms.values():
            if instrument.name.startswith(prefix):
                histograms.append(
                    {
                        **entry(instrument),
                        "count": instrument.count,
                        "sum": instrument.total,
                        "min": instrument.min,
                        "max": instrument.max,
                        "mean": instrument.mean,
                        "p50": instrument.percentile(0.50),
                        "p95": instrument.percentile(0.95),
                        "p99": instrument.percentile(0.99),
                    }
                )
        key = lambda item: (item["name"], sorted(item.get("labels", {}).items()))  # noqa: E731
        return {
            "counters": sorted(counters, key=key),
            "gauges": sorted(gauges, key=key),
            "histograms": sorted(histograms, key=key),
        }

    def reset(self) -> None:
        """Zero every instrument in place (cached references stay valid)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for histogram in self._histograms.values():
            histogram._zero()


#: The process-global registry every instrumented module writes to.
REGISTRY = Registry()


def counter(name: str, **labels: Any) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels: Any) -> Histogram:
    return REGISTRY.histogram(name, **labels)


def snapshot(prefix: str = "") -> Dict[str, Any]:
    return REGISTRY.snapshot(prefix)


def counter_deltas(
    before: Dict[str, Any], after: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """Counter increments between two snapshots (zero deltas dropped).

    The profile runner uses this so a one-shot breakdown reports only the
    work of the profiled run, not whatever the process counted earlier.
    """

    def keyed(snap: Dict[str, Any]) -> Dict[Tuple[str, LabelKey], int]:
        return {
            (
                item["name"],
                tuple(sorted(item.get("labels", {}).items())),
            ): item["value"]
            for item in snap.get("counters", [])
        }

    earlier = keyed(before)
    deltas: List[Dict[str, Any]] = []
    for key, value in keyed(after).items():
        delta = value - earlier.get(key, 0)
        if delta:
            name, labels = key
            item: Dict[str, Any] = {"name": name, "value": delta}
            if labels:
                item["labels"] = dict(labels)
            deltas.append(item)
    deltas.sort(key=lambda item: (item["name"], sorted(item.get("labels", {}).items())))
    return deltas
