"""The ``repro-bus profile`` engine: replay a workload, break down time.

:func:`run_profile` wraps an arbitrary callable with a memory trace
sink and a counter snapshot pair, then reduces the captured spans to a
per-stage wall-time table (outermost-span charging, see
:func:`repro.obs.manifest.aggregate_stages`) and the counter increments
the run caused.  Every captured event is validated against the trace
schema; validation failures surface in :attr:`ProfileResult.schema_errors`
and turn the CLI exit code nonzero — this is the CI smoke gate that
keeps the event schema honest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.manifest import aggregate_stages
from repro.obs.metrics import counter_deltas, snapshot
from repro.obs.perf import US_PER_S, span_histograms
from repro.obs.trace import capture, validate_events

#: Stage names reported per workload; anything else lands in "(other)".
WORKLOAD_STAGES: Dict[str, Tuple[str, ...]] = {
    "table": ("tracegen", "encode", "count"),
    "power": ("tracegen", "simulate", "count"),
    "prove": ("crosscheck", "equivalence", "sequential"),
}


@dataclass
class StageStat:
    """One row of the breakdown."""

    name: str
    wall_s: float
    spans: int
    unclosed: int = 0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0

    def share(self, total_s: float) -> float:
        return self.wall_s / total_s if total_s else 0.0


@dataclass
class ProfileResult:
    """Everything ``repro-bus profile`` prints."""

    workload: str
    params: Dict[str, Any]
    total_s: float
    stages: List[StageStat]
    counters: List[Dict[str, Any]]
    events: int
    schema_errors: List[str] = field(default_factory=list)
    error: Optional[str] = None
    #: The raw captured events, kept so the CLI can export a flame graph
    #: (``--flame``) without re-running the workload.  Deliberately not
    #: part of :meth:`to_dict` — traces belong in trace files.
    captured_events: List[Dict[str, Any]] = field(default_factory=list, repr=False)

    @property
    def staged_s(self) -> float:
        return sum(stage.wall_s for stage in self.stages)

    @property
    def other_s(self) -> float:
        return max(0.0, self.total_s - self.staged_s)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "params": dict(self.params),
            "total_s": self.total_s,
            "stages": [
                {
                    "name": stage.name,
                    "wall_s": stage.wall_s,
                    "share": stage.share(self.total_s),
                    "spans": stage.spans,
                    "unclosed": stage.unclosed,
                    "p50_s": stage.p50_s,
                    "p95_s": stage.p95_s,
                    "p99_s": stage.p99_s,
                }
                for stage in self.stages
            ],
            "other_s": self.other_s,
            "counters": list(self.counters),
            "events": self.events,
            "schema_errors": list(self.schema_errors),
            "error": self.error,
        }

    def render(self) -> str:
        lines = [
            f"profile: {self.workload} "
            + " ".join(f"{k}={v}" for k, v in self.params.items())
        ]
        lines.append(f"total: {self.total_s:.3f} s over {self.events} events")
        if self.error:
            lines.append(f"workload FAILED: {self.error}")
        width = max(
            [len("(other)")] + [len(stage.name) for stage in self.stages]
        )
        lines.append(
            f"{'stage'.ljust(width)}   wall (s)   share   spans"
            "   p50 (s)   p95 (s)   p99 (s)"
        )
        for stage in self.stages:
            suffix = f"  ~{stage.unclosed} unclosed" if stage.unclosed else ""
            lines.append(
                f"{stage.name.ljust(width)}   {stage.wall_s:8.3f}   "
                f"{stage.share(self.total_s):5.1%}   {stage.spans:5d}"
                f"   {stage.p50_s:7.3f}   {stage.p95_s:7.3f}"
                f"   {stage.p99_s:7.3f}{suffix}"
            )
        lines.append(
            f"{'(other)'.ljust(width)}   {self.other_s:8.3f}   "
            f"{(self.other_s / self.total_s if self.total_s else 0.0):5.1%}"
        )
        if self.counters:
            lines.append("counters:")
            for item in self.counters:
                labels = item.get("labels")
                suffix = (
                    "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                    if labels
                    else ""
                )
                lines.append(f"  {item['name']}{suffix} = {item['value']}")
        if self.schema_errors:
            lines.append(f"SCHEMA ERRORS ({len(self.schema_errors)}):")
            lines.extend(f"  {problem}" for problem in self.schema_errors)
        return "\n".join(lines)


def run_profile(
    workload: str,
    fn: Callable[[], Any],
    params: Optional[Dict[str, Any]] = None,
    stage_names: Optional[Sequence[str]] = None,
) -> Tuple[Any, ProfileResult]:
    """Run ``fn`` under tracing and return ``(fn(), breakdown)``.

    A workload that raises still produces a full breakdown: the exception
    is recorded in :attr:`ProfileResult.error` (``value`` comes back as
    ``None``), the stages completed before the crash keep their charged
    time, and the stage the exception escaped from is charged through the
    span machinery (``Span.__exit__`` emits a ``status="error"``
    ``span_end`` on the way out, and any span left unclosed by a harder
    abort is estimated by :func:`repro.obs.manifest.aggregate_stages`).
    """
    if stage_names is None:
        stage_names = WORKLOAD_STAGES.get(workload)
    before = snapshot()
    value: Any = None
    error: Optional[str] = None
    with capture() as sink:
        started = time.perf_counter()
        try:
            value = fn()
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        finally:
            total_s = time.perf_counter() - started
    aggregated = aggregate_stages(sink.events, stage_names)
    percentiles = span_histograms(sink.events, stage_names)
    order = list(stage_names) if stage_names else sorted(aggregated)

    def stage_percentile(name: str, q: float) -> float:
        histogram = percentiles.get(name)
        return histogram.percentile(q) / US_PER_S if histogram else 0.0

    stages = [
        StageStat(
            name=name,
            wall_s=aggregated.get(name, {}).get("wall_s", 0.0),
            spans=int(aggregated.get(name, {}).get("spans", 0)),
            unclosed=int(aggregated.get(name, {}).get("unclosed", 0)),
            p50_s=stage_percentile(name, 0.50),
            p95_s=stage_percentile(name, 0.95),
            p99_s=stage_percentile(name, 0.99),
        )
        for name in order
    ]
    result = ProfileResult(
        workload=workload,
        params=dict(params or {}),
        total_s=total_s,
        stages=stages,
        counters=counter_deltas(before, snapshot()),
        events=len(sink.events),
        schema_errors=validate_events(sink.events),
        error=error,
        captured_events=list(sink.events),
    )
    return value, result
