"""Observability substrate: tracing spans, metrics and run manifests.

Three layers, all zero-dependency:

* :mod:`repro.obs.trace` — nestable context-manager spans emitting JSONL
  events to pluggable sinks; near-zero-cost no-ops while disabled.
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges and histograms with a snapshot API (always on).
* :mod:`repro.obs.manifest` — JSON provenance records (git sha, seed,
  per-stage wall time, counter snapshot, result digest) written next to
  pipeline outputs.
* :mod:`repro.obs.profiling` — the ``repro-bus profile`` engine.
* :mod:`repro.obs.perf` — span analytics: profile trees, per-span-kind
  percentiles, collapsed-stack (flame graph) export.
* :mod:`repro.obs.history` — benchmark history records and declarative
  budget evaluation (``repro-bus bench report``).

See ``docs/observability.md`` for the event schema and counter catalog.
"""

from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    BenchReport,
    Budget,
    append_record,
    evaluate_budgets,
    latest_per_name,
    load_budgets,
    load_history,
    make_record,
    resolve_baselines,
    run_report,
)
from repro.obs.manifest import (
    DETERMINISTIC_FIELDS,
    MANIFEST_SCHEMA_VERSION,
    aggregate_stages,
    charged_spans,
    collect_manifest,
    deterministic_view,
    digest_text,
    git_sha,
    stage_times_from_events,
    write_manifest,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    counter,
    counter_deltas,
    gauge,
    histogram,
    snapshot,
)
from repro.obs.perf import (
    ProfileNode,
    build_profile_tree,
    collapse_stacks,
    parse_collapsed,
    render_tree,
    span_histograms,
    span_percentiles,
    write_flame,
)
from repro.obs.profiling import (
    WORKLOAD_STAGES,
    ProfileResult,
    StageStat,
    run_profile,
)
from repro.obs.trace import (
    NULL_SPAN,
    SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    Span,
    capture,
    disable,
    enable,
    enabled,
    event,
    load_jsonl,
    span,
    validate_event,
    validate_events,
)

__all__ = [
    "BenchReport",
    "Budget",
    "Counter",
    "DETERMINISTIC_FIELDS",
    "Gauge",
    "HISTORY_SCHEMA_VERSION",
    "Histogram",
    "JsonlSink",
    "MANIFEST_SCHEMA_VERSION",
    "MemorySink",
    "NULL_SPAN",
    "ProfileNode",
    "ProfileResult",
    "REGISTRY",
    "Registry",
    "SCHEMA_VERSION",
    "Span",
    "StageStat",
    "WORKLOAD_STAGES",
    "aggregate_stages",
    "append_record",
    "build_profile_tree",
    "capture",
    "charged_spans",
    "collapse_stacks",
    "collect_manifest",
    "counter",
    "counter_deltas",
    "deterministic_view",
    "digest_text",
    "disable",
    "enable",
    "enabled",
    "evaluate_budgets",
    "event",
    "gauge",
    "git_sha",
    "histogram",
    "latest_per_name",
    "load_budgets",
    "load_history",
    "load_jsonl",
    "make_record",
    "parse_collapsed",
    "render_tree",
    "resolve_baselines",
    "run_profile",
    "run_report",
    "snapshot",
    "span",
    "span_histograms",
    "span_percentiles",
    "stage_times_from_events",
    "validate_event",
    "validate_events",
    "write_flame",
    "write_manifest",
]
