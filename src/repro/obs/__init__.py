"""Observability substrate: tracing spans, metrics and run manifests.

Three layers, all zero-dependency:

* :mod:`repro.obs.trace` — nestable context-manager spans emitting JSONL
  events to pluggable sinks; near-zero-cost no-ops while disabled.
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges and histograms with a snapshot API (always on).
* :mod:`repro.obs.manifest` — JSON provenance records (git sha, seed,
  per-stage wall time, counter snapshot, result digest) written next to
  pipeline outputs.
* :mod:`repro.obs.profiling` — the ``repro-bus profile`` engine.

See ``docs/observability.md`` for the event schema and counter catalog.
"""

from repro.obs.manifest import (
    DETERMINISTIC_FIELDS,
    MANIFEST_SCHEMA_VERSION,
    aggregate_stages,
    collect_manifest,
    deterministic_view,
    digest_text,
    git_sha,
    stage_times_from_events,
    write_manifest,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    counter,
    counter_deltas,
    gauge,
    histogram,
    snapshot,
)
from repro.obs.profiling import (
    WORKLOAD_STAGES,
    ProfileResult,
    StageStat,
    run_profile,
)
from repro.obs.trace import (
    NULL_SPAN,
    SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    Span,
    capture,
    disable,
    enable,
    enabled,
    event,
    load_jsonl,
    span,
    validate_event,
    validate_events,
)

__all__ = [
    "Counter",
    "DETERMINISTIC_FIELDS",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MANIFEST_SCHEMA_VERSION",
    "MemorySink",
    "NULL_SPAN",
    "ProfileResult",
    "REGISTRY",
    "Registry",
    "SCHEMA_VERSION",
    "Span",
    "StageStat",
    "WORKLOAD_STAGES",
    "aggregate_stages",
    "capture",
    "collect_manifest",
    "counter",
    "counter_deltas",
    "deterministic_view",
    "digest_text",
    "disable",
    "enable",
    "enabled",
    "event",
    "gauge",
    "git_sha",
    "histogram",
    "load_jsonl",
    "run_profile",
    "snapshot",
    "span",
    "stage_times_from_events",
    "validate_event",
    "validate_events",
    "write_manifest",
]
