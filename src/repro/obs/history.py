"""Benchmark history and regression gating.

Every benchmark published through ``benchmarks/conftest.publish`` appends
one JSONL record to ``benchmarks/results/history.jsonl``:

.. code-block:: json

    {"v": 1, "name": "kernel_speedup", "git_sha": "...", "ts": "...",
     "result_digest": "sha256:...", "rows": {...}, "timing": {...},
     "manifest": {...}}

``rows`` is the benchmark's structured result (the same dict written to
``<name>.json``), ``timing`` optional wall-clock numbers, ``manifest``
the run's provenance manifest.  The file is append-only: re-running a
benchmark adds a record rather than replacing one, so the trajectory of
a metric across commits can be read straight off the file.

``repro-bus bench report`` compares the **latest** record per benchmark
name to a **baseline** (by default the previous record of the same name;
``--against`` selects a git sha prefix or another history file) and
evaluates declarative budgets from ``benchmarks/budgets.toml``:

* ``[absolute]`` — ``"<name>.<dotted.path.into.rows>" = "<op> <value>"``
  checks the latest value alone (``>= 50``, ``== 27``, ``== true`` ...).
* ``[ratio]`` — ``"<name>.<dotted.path>" = <max_ratio>`` bounds
  ``latest / baseline`` for time-like metrics; skipped (with a note)
  when no baseline record exists, so a fresh history never fails.

Budget violations exit nonzero; unresolvable budget paths are warnings
that only fail under ``--strict``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

HISTORY_SCHEMA_VERSION = 1

_OPS = ("==", "!=", ">=", "<=", ">", "<")


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------


def make_record(
    name: str,
    rows: Optional[Dict[str, Any]],
    manifest: Optional[Dict[str, Any]] = None,
    timing: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One history record (JSON-ready)."""
    return {
        "v": HISTORY_SCHEMA_VERSION,
        "name": name,
        "git_sha": (manifest or {}).get("git_sha"),
        "ts": datetime.now(timezone.utc).isoformat(),
        "result_digest": (manifest or {}).get("result_digest"),
        "rows": rows,
        "timing": timing,
        "manifest": manifest,
    }


def append_record(path: Union[str, Path], record: Dict[str, Any]) -> Path:
    """Append one record to a history file (parents created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return target


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All records in file order; malformed lines are skipped."""
    target = Path(path)
    if not target.exists():
        return []
    records: List[Dict[str, Any]] = []
    for line in target.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "name" in record:
            records.append(record)
    return records


def latest_per_name(
    records: Sequence[Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """The last record of each benchmark name (file order = time order)."""
    latest: Dict[str, Dict[str, Any]] = {}
    for record in records:
        latest[record["name"]] = record
    return latest


def resolve_baselines(
    records: Sequence[Dict[str, Any]],
    against: Optional[str] = None,
) -> Dict[str, Dict[str, Any]]:
    """Baseline record per name for a comparison run.

    * ``against=None`` — the second-latest record of each name (the
      natural "previous run" baseline).
    * ``against=<sha-prefix>`` — the latest record of each name whose
      ``git_sha`` starts with the prefix.
    * ``against=<path>`` — the latest record per name from that history
      file (callers detect the file case and load it first; this
      function only handles in-memory records and sha prefixes).
    """
    baselines: Dict[str, Dict[str, Any]] = {}
    if against is None:
        previous: Dict[str, Dict[str, Any]] = {}
        for record in records:
            name = record["name"]
            if name in previous:
                baselines[name] = previous[name]
            previous[name] = record
        # previous[name] is now the latest; baselines holds the one before.
        return baselines
    for record in records:
        sha = record.get("git_sha") or ""
        if sha.startswith(against):
            baselines[record["name"]] = record
    return baselines


def dig(data: Any, path: str) -> Tuple[bool, Any]:
    """Follow a dotted path into nested dicts: ``(found, value)``."""
    current = data
    for step in path.split("."):
        if not isinstance(current, dict) or step not in current:
            return False, None
        current = current[step]
    return True, current


# ---------------------------------------------------------------------------
# Budgets
# ---------------------------------------------------------------------------


@dataclass
class Budget:
    """One declarative constraint from ``budgets.toml``."""

    kind: str  # "absolute" | "ratio"
    name: str  # benchmark name (first path segment)
    path: str  # dotted path into the record's rows
    op: str = ">="  # absolute only
    value: Any = None  # absolute: rhs; ratio: max latest/baseline

    @property
    def key(self) -> str:
        return f"{self.name}.{self.path}"


def _parse_toml_value(text: str) -> Any:
    text = text.strip()
    if text and text[0] in "\"'" and text[-1] == text[0] and len(text) >= 2:
        return text[1:-1]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_budgets_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Minimal TOML-subset parser (sections of ``"key" = value`` lines).

    Fallback for interpreters without :mod:`tomllib`; handles exactly the
    shape ``budgets.toml`` uses — quoted keys, string/number/bool values,
    ``#`` comments — nothing more.
    """
    sections: Dict[str, Dict[str, Any]] = {}
    current: Optional[Dict[str, Any]] = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            current = sections.setdefault(line[1:-1].strip(), {})
            continue
        if current is None or "=" not in line:
            continue
        key_text, _, value_text = line.partition("=")
        key = key_text.strip().strip("\"'")
        comment = value_text.find(" #")
        if comment != -1:
            value_text = value_text[:comment]
        current[key] = _parse_toml_value(value_text)
    return sections


def load_budgets(path: Union[str, Path]) -> List[Budget]:
    """Parse ``budgets.toml`` into :class:`Budget` constraints."""
    text = Path(path).read_text(encoding="utf-8")
    try:
        import tomllib

        sections = tomllib.loads(text)
    except ModuleNotFoundError:  # pragma: no cover - py<3.11 fallback
        sections = _parse_budgets_text(text)
    budgets: List[Budget] = []
    for key, spec in sections.get("absolute", {}).items():
        name, _, rows_path = key.partition(".")
        if not rows_path:
            raise ValueError(f"budget key {key!r} needs a '<name>.<path>' form")
        spec_text = str(spec).strip()
        for op in _OPS:
            if spec_text.startswith(op):
                value = _parse_toml_value(spec_text[len(op) :])
                budgets.append(
                    Budget("absolute", name, rows_path, op=op, value=value)
                )
                break
        else:
            raise ValueError(
                f"budget {key!r}: {spec!r} must start with one of {_OPS}"
            )
    for key, max_ratio in sections.get("ratio", {}).items():
        name, _, rows_path = key.partition(".")
        if not rows_path:
            raise ValueError(f"budget key {key!r} needs a '<name>.<path>' form")
        budgets.append(
            Budget("ratio", name, rows_path, value=float(max_ratio))
        )
    return budgets


def _compare(op: str, left: Any, right: Any) -> bool:
    if op == "==":
        return bool(left == right)
    if op == "!=":
        return bool(left != right)
    try:
        if op == ">=":
            return bool(left >= right)
        if op == "<=":
            return bool(left <= right)
        if op == ">":
            return bool(left > right)
        if op == "<":
            return bool(left < right)
    except TypeError:
        return False
    raise ValueError(f"unknown operator {op!r}")


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


@dataclass
class BenchReport:
    """Outcome of one ``repro-bus bench report`` evaluation."""

    checks: List[Dict[str, Any]] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "checks": list(self.checks),
            "errors": list(self.errors),
            "warnings": list(self.warnings),
            "notes": list(self.notes),
            "ok": not self.errors,
        }

    def render(self) -> str:
        lines: List[str] = []
        for check in self.checks:
            status = "ok  " if check["ok"] else "FAIL"
            lines.append(f"{status} {check['detail']}")
        for note in self.notes:
            lines.append(f"note {note}")
        for warning in self.warnings:
            lines.append(f"WARN {warning}")
        if self.errors:
            lines.append(f"{len(self.errors)} budget violation(s)")
        else:
            lines.append("all budgets met")
        return "\n".join(lines)


def evaluate_budgets(
    budgets: Sequence[Budget],
    latest: Dict[str, Dict[str, Any]],
    baselines: Dict[str, Dict[str, Any]],
) -> BenchReport:
    """Check every budget against the latest (and baseline) records."""
    report = BenchReport()
    for budget in budgets:
        record = latest.get(budget.name)
        if record is None:
            report.warnings.append(
                f"{budget.key}: no history record for {budget.name!r}"
            )
            continue
        found, value = dig(record.get("rows") or {}, budget.path)
        if not found:
            report.warnings.append(
                f"{budget.key}: path not found in latest rows"
            )
            continue
        if budget.kind == "absolute":
            ok = _compare(budget.op, value, budget.value)
            detail = (
                f"{budget.key} = {value!r} (budget: {budget.op} "
                f"{budget.value!r})"
            )
            report.checks.append(
                {"budget": budget.key, "kind": "absolute", "ok": ok,
                 "value": value, "detail": detail}
            )
            if not ok:
                report.errors.append(detail)
            continue
        # ratio budgets need a baseline record with the same path.
        baseline = baselines.get(budget.name)
        if baseline is None:
            report.notes.append(
                f"{budget.key}: no baseline run, ratio check skipped"
            )
            continue
        base_found, base_value = dig(baseline.get("rows") or {}, budget.path)
        if not base_found:
            report.warnings.append(
                f"{budget.key}: path not found in baseline rows"
            )
            continue
        try:
            latest_f = float(value)
            base_f = float(base_value)
        except (TypeError, ValueError):
            report.warnings.append(
                f"{budget.key}: non-numeric value for ratio budget"
            )
            continue
        if base_f <= 0.0:
            report.notes.append(
                f"{budget.key}: baseline is {base_f}, ratio check skipped"
            )
            continue
        ratio = latest_f / base_f
        ok = ratio <= float(budget.value)
        detail = (
            f"{budget.key} = {latest_f:.6g} vs baseline {base_f:.6g} "
            f"(ratio {ratio:.2f}, budget <= {float(budget.value):.2f}x)"
        )
        report.checks.append(
            {"budget": budget.key, "kind": "ratio", "ok": ok,
             "ratio": ratio, "detail": detail}
        )
        if not ok:
            report.errors.append(detail)
    return report


def run_report(
    history_path: Union[str, Path],
    budgets_path: Union[str, Path],
    against: Optional[str] = None,
) -> BenchReport:
    """Load history + budgets, resolve baselines, evaluate.

    ``against`` may be ``None`` (previous run of each name), a git sha
    prefix, or a path to another history file.
    """
    records = load_history(history_path)
    if not records:
        report = BenchReport()
        report.errors.append(f"no history records in {history_path}")
        return report
    latest = latest_per_name(records)
    if against is not None and Path(against).exists():
        baselines = latest_per_name(load_history(against))
    else:
        baselines = resolve_baselines(records, against)
        if against is not None and not baselines:
            report = BenchReport()
            report.errors.append(
                f"--against {against!r}: no matching sha in history"
            )
            return report
    budgets = load_budgets(budgets_path)
    return evaluate_budgets(budgets, latest, baselines)
