"""Structured tracing: nestable spans emitting JSONL events.

The tracer is **off by default** and compiled down to near-zero cost in
that state: :func:`span` returns a shared no-op singleton and
:func:`event` is a single boolean test, so instrumentation can live
permanently inside pipeline code (stream encoders, table builders, the
formal engines) without taxing hot loops.  When enabled, every span
produces two events on the configured sinks:

``span_begin``
    ``{"v": 1, "ts": ..., "type": "span_begin", "name": ..., "id": n,
    "parent": m | null, "fields": {...}}``
``span_end``
    the same identity plus ``"dur_s"`` (wall seconds) and ``"status"``
    (``"ok"`` or ``"error"``; errors also carry ``"error": "TypeName"``).

Point events (:func:`event`) use ``"type": "event"`` with the enclosing
span as ``parent``.  Field values must be JSON scalars; the writer does
not chase object graphs.  :func:`validate_event` checks one decoded
event against this schema and is what ``repro-bus profile`` runs over
every captured event (the CI smoke gate).

Spans nest through a per-thread stack, so tracing is exception-safe by
construction: ``__exit__`` always pops and always emits the end event,
recording the exception type without suppressing it.
"""

from __future__ import annotations

import io
import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

#: Event schema version; bump on incompatible changes to the dict layout.
SCHEMA_VERSION = 1

EVENT_TYPES = ("span_begin", "span_end", "event")

_SCALARS = (str, int, float, bool, type(None))


class JsonlSink:
    """Writes one JSON object per line to a file path or text stream."""

    def __init__(self, target: Union[str, Path, io.TextIOBase]):
        if isinstance(target, (str, Path)):
            self._file: Any = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._file = target
            self._owns = False

    def emit(self, event: Dict[str, Any]) -> None:
        self._file.write(json.dumps(event, sort_keys=True) + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns:
            self._file.close()


class MemorySink:
    """Buffers events in memory — the profile runner and tests use this."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class _State(threading.local):
    def __init__(self) -> None:
        self.stack: List[int] = []


_state = _State()
_sinks: List[Any] = []
_enabled = False
_next_id = 0
_id_lock = threading.Lock()


def _new_id() -> int:
    global _next_id
    with _id_lock:
        _next_id += 1
        return _next_id


def enabled() -> bool:
    """True while at least one sink is receiving events."""
    return _enabled


def enable(*sinks: Any) -> None:
    """Route events to ``sinks`` (objects with ``emit(dict)``/``close()``)."""
    global _enabled
    if not sinks:
        raise ValueError("enable() needs at least one sink")
    _sinks.extend(sinks)
    _enabled = True


def disable() -> None:
    """Stop tracing and close every registered sink."""
    global _enabled
    _enabled = False
    for sink in _sinks:
        sink.close()
    del _sinks[:]
    _state.stack = []


def _emit(event: Dict[str, Any]) -> None:
    for sink in _sinks:
        sink.emit(event)


class _NullSpan:
    """The disabled-mode span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **fields: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One live span; use via ``with span("encode", codec="t0bi"):``."""

    __slots__ = ("name", "fields", "span_id", "parent_id", "_started")

    def __init__(self, name: str, fields: Dict[str, Any]):
        self.name = name
        self.fields = fields
        self.span_id = _new_id()
        self.parent_id: Optional[int] = None
        self._started = 0.0

    def annotate(self, **fields: Any) -> None:
        """Attach extra fields, reported on the ``span_end`` event."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        stack = _state.stack
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._started = time.perf_counter()
        _emit(
            {
                "v": SCHEMA_VERSION,
                "ts": time.time(),
                "type": "span_begin",
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "fields": dict(self.fields),
            }
        )
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        duration = time.perf_counter() - self._started
        stack = _state.stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        elif self.span_id in stack:  # pragma: no cover - defensive
            stack.remove(self.span_id)
        end: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "ts": time.time(),
            "type": "span_end",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "fields": dict(self.fields),
            "dur_s": duration,
            "status": "ok" if exc_type is None else "error",
        }
        if exc_type is not None:
            end["error"] = exc_type.__name__
        _emit(end)
        return False


def span(name: str, **fields: Any) -> Union[Span, _NullSpan]:
    """A nestable context-manager span; a shared no-op when disabled."""
    if not _enabled:
        return NULL_SPAN
    return Span(name, fields)


def event(name: str, **fields: Any) -> None:
    """Emit a point event inside the current span (no-op when disabled)."""
    if not _enabled:
        return
    stack = _state.stack
    _emit(
        {
            "v": SCHEMA_VERSION,
            "ts": time.time(),
            "type": "event",
            "name": name,
            "id": _new_id(),
            "parent": stack[-1] if stack else None,
            "fields": dict(fields),
        }
    )


def detach_sinks() -> None:
    """Drop every registered sink *without* closing it.

    A forked worker process inherits the parent's sink list — including
    open ``JsonlSink`` file descriptors shared with the parent.  Writing
    (or closing) those from the child would interleave and corrupt the
    parent's trace, so worker initializers call this first and then
    install their own :class:`MemorySink` via :class:`capture`.
    """
    global _enabled
    del _sinks[:]
    _enabled = False
    _state.stack = []


def replay_events(events: Sequence[Dict[str, Any]]) -> None:
    """Re-emit captured events (typically from a worker process) into the
    current sinks.

    Worker processes allocate span ids from their own counters, so ids
    from different workers collide; every replayed event gets a fresh id
    here (``span_end`` reuses its ``span_begin``'s remapped id) and
    top-level worker spans are reparented under the caller's current
    span, keeping the merged trace a single consistent tree.
    """
    if not _enabled or not events:
        return
    remap: Dict[int, int] = {}
    stack = _state.stack
    top_parent = stack[-1] if stack else None
    for entry in events:
        entry = dict(entry)
        old_id = entry.get("id")
        if isinstance(old_id, int):
            if entry.get("type") == "span_end" and old_id in remap:
                entry["id"] = remap[old_id]
            else:
                remap[old_id] = entry["id"] = _new_id()
        parent = entry.get("parent")
        if parent is None:
            entry["parent"] = top_parent
        else:
            entry["parent"] = remap.get(parent, top_parent)
        _emit(entry)


class capture:
    """Context manager that tees events into a fresh :class:`MemorySink`.

    ``with capture() as sink: ...`` enables tracing for the duration (on
    top of any sinks already active) and removes the sink afterwards
    without closing unrelated sinks.
    """

    def __init__(self) -> None:
        self.sink = MemorySink()

    def __enter__(self) -> MemorySink:
        global _enabled
        _sinks.append(self.sink)
        _enabled = True
        return self.sink

    def __exit__(self, *exc: object) -> bool:
        global _enabled
        if self.sink in _sinks:
            _sinks.remove(self.sink)
        _enabled = bool(_sinks)
        if not _enabled:
            _state.stack = []
        return False


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------


def validate_event(event_dict: Any) -> List[str]:
    """Problems with one decoded event against the schema (empty = valid)."""
    problems: List[str] = []
    if not isinstance(event_dict, dict):
        return ["event is not a JSON object"]
    if event_dict.get("v") != SCHEMA_VERSION:
        problems.append(f"bad schema version {event_dict.get('v')!r}")
    kind = event_dict.get("type")
    if kind not in EVENT_TYPES:
        problems.append(f"unknown event type {kind!r}")
    name = event_dict.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"bad name {name!r}")
    if not isinstance(event_dict.get("ts"), (int, float)):
        problems.append("missing/non-numeric ts")
    if not isinstance(event_dict.get("id"), int):
        problems.append("missing/non-integer id")
    parent = event_dict.get("parent")
    if parent is not None and not isinstance(parent, int):
        problems.append(f"bad parent {parent!r}")
    fields = event_dict.get("fields")
    if not isinstance(fields, dict):
        problems.append("missing fields dict")
    else:
        for key, value in fields.items():
            if not isinstance(value, _SCALARS):
                problems.append(f"field {key!r} is not a JSON scalar")
    if kind == "span_end":
        duration = event_dict.get("dur_s")
        if not isinstance(duration, (int, float)) or duration < 0:
            problems.append(f"bad dur_s {duration!r}")
        if event_dict.get("status") not in ("ok", "error"):
            problems.append(f"bad status {event_dict.get('status')!r}")
    return problems


def validate_events(events: Sequence[Any]) -> List[str]:
    """Flattened problems over a whole event stream, indexed per event."""
    problems: List[str] = []
    for index, entry in enumerate(events):
        problems.extend(
            f"event {index}: {problem}" for problem in validate_event(entry)
        )
    return problems


def load_jsonl(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Decode a JSONL trace file event by event."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
