"""Run manifests: provenance records written next to pipeline outputs.

A manifest answers "which code, which inputs, which knobs produced this
file?" for every ``repro-bus`` invocation run with ``--manifest`` and
every benchmark result published by ``benchmarks/conftest.publish``:

* **identity** — git commit, python version, platform;
* **inputs** — the command, its argv, the seed and stream length in
  force;
* **work** — wall time, per-stage wall seconds (aggregated from trace
  spans when tracing was on), and a counter snapshot;
* **result** — a SHA-256 digest of the rendered output, so two runs can
  be compared without storing the output twice.

Wall times, timestamps and process-cumulative counters legitimately
differ between reruns; :func:`deterministic_view` strips them, leaving
exactly the fields that must be identical when a seeded run is repeated
— the property ``tests/test_obs.py`` locks in.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import snapshot as metrics_snapshot

MANIFEST_SCHEMA_VERSION = 1

#: Fields that must survive a rerun of the same seeded workload.
DETERMINISTIC_FIELDS = (
    "schema_version",
    "command",
    "argv",
    "git_sha",
    "seed",
    "stream_length",
    "result_digest",
)

_git_sha_cache: Optional[str] = ""


def git_sha() -> Optional[str]:
    """The repository HEAD commit, or None outside a git checkout."""
    global _git_sha_cache
    if _git_sha_cache == "":
        try:
            _git_sha_cache = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).parent,
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            ).stdout.strip()
        except Exception:
            _git_sha_cache = None
    return _git_sha_cache


def digest_text(text: str) -> str:
    """Stable content digest of a rendered result block."""
    return "sha256:" + hashlib.sha256(text.encode("utf-8")).hexdigest()


def collect_manifest(
    command: str,
    argv: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
    stream_length: Optional[int] = None,
    wall_s: Optional[float] = None,
    stages: Optional[Dict[str, Any]] = None,
    result_text: Optional[str] = None,
    counter_prefix: str = "",
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one manifest dict (JSON-ready)."""
    metrics = metrics_snapshot(counter_prefix)
    manifest: Dict[str, Any] = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "command": command,
        "argv": list(argv) if argv is not None else None,
        "started_at": datetime.now(timezone.utc).isoformat(),
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "seed": seed,
        "stream_length": stream_length,
        "wall_s": wall_s,
        "stages": dict(stages) if stages else {},
        "counters": metrics["counters"],
        "gauges": metrics["gauges"],
        "histograms": metrics["histograms"],
        "result_digest": (
            digest_text(result_text) if result_text is not None else None
        ),
    }
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def deterministic_view(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """The rerun-stable subset of a manifest (see module docstring)."""
    return {key: manifest.get(key) for key in DETERMINISTIC_FIELDS}


def write_manifest(
    path: Union[str, Path], manifest: Dict[str, Any]
) -> Path:
    """Serialize a manifest to ``path`` (parent directories created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return target


def charged_spans(
    events: Sequence[Dict[str, Any]],
    stage_names: Optional[Sequence[str]] = None,
) -> Iterator[Tuple[str, float, bool]]:
    """Yield ``(name, wall_s, closed)`` for every charged span.

    A span is charged iff no ancestor span has a name in the aggregated
    set — so ``tracegen`` inside ``tracegen`` (a multiplexed trace
    building its instruction source) and ``count`` inside ``encode``
    count once, keeping the per-stage times additive and comparable to
    the run's total wall time.

    Spans that *began but never ended* — a workload aborted mid-stage by
    an exception or a kill, or a truncated JSONL trace — are still
    charged: their wall time is estimated as the gap between their
    ``span_begin`` timestamp and the last timestamp seen in the event
    stream, and they are yielded with ``closed=False``.
    """
    names: Dict[int, str] = {}
    parents: Dict[int, Optional[int]] = {}
    begin_ts: Dict[int, float] = {}
    ended: set = set()
    last_ts: Optional[float] = None
    for entry in events:
        ts = entry.get("ts")
        if isinstance(ts, (int, float)):
            last_ts = ts if last_ts is None else max(last_ts, ts)
        if entry.get("type") == "span_begin":
            names[entry["id"]] = entry["name"]
            parents[entry["id"]] = entry.get("parent")
            if isinstance(ts, (int, float)):
                begin_ts[entry["id"]] = float(ts)
        elif entry.get("type") == "span_end":
            ended.add(entry.get("id"))
    stage_set = (
        set(stage_names) if stage_names is not None else set(names.values())
    )

    def outermost(parent: Optional[int]) -> bool:
        ancestor = parent
        while ancestor is not None:
            if names.get(ancestor) in stage_set:
                return False
            ancestor = parents.get(ancestor)
        return True

    for entry in events:
        if entry.get("type") != "span_end" or entry["name"] not in stage_set:
            continue
        if not outermost(entry.get("parent")):
            continue
        yield entry["name"], float(entry.get("dur_s", 0.0)), True
    # Unclosed spans, in begin order.
    for span_id, name in names.items():
        if span_id in ended or name not in stage_set:
            continue
        if not outermost(parents.get(span_id)):
            continue
        started = begin_ts.get(span_id)
        wall_s = (
            max(0.0, last_ts - started)
            if started is not None and last_ts is not None
            else 0.0
        )
        yield name, wall_s, False


def aggregate_stages(
    events: Sequence[Dict[str, Any]],
    stage_names: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-stage ``{"wall_s", "spans"}``, charging outermost spans only.

    See :func:`charged_spans` for the charging rule.  Stages with spans
    that never closed (an exception aborted the workload mid-stage, or
    the trace was truncated) additionally carry an ``"unclosed"`` count;
    their estimated wall time is included in ``"wall_s"`` so a crashed
    run still accounts for where its time went.
    """
    stages: Dict[str, Dict[str, float]] = {}
    for name, wall_s, closed in charged_spans(events, stage_names):
        stage = stages.setdefault(name, {"wall_s": 0.0, "spans": 0})
        stage["wall_s"] += wall_s
        stage["spans"] += 1
        if not closed:
            stage["unclosed"] = stage.get("unclosed", 0) + 1
    return stages


def stage_times_from_events(
    events: Sequence[Dict[str, Any]],
    stage_names: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Outermost span wall time by name (see :func:`aggregate_stages`)."""
    return {
        name: stage["wall_s"]
        for name, stage in aggregate_stages(events, stage_names).items()
    }
