"""Span analytics: profile trees, percentiles and flame-graph export.

This is the *analysis* half of the tracing substrate: :mod:`repro.obs.trace`
records span events, this module turns a captured (or loaded) event stream
into answers:

* :func:`build_profile_tree` — aggregate events into a tree keyed by span
  *path* (the stack of span names from the root), with per-node call
  counts, cumulative wall time and **self** time (cumulative minus the
  time spent in direct child spans).
* :func:`span_histograms` — one power-of-two :class:`~repro.obs.metrics.
  Histogram` per span kind over the charged span durations (observed in
  microseconds, so sub-second spans spread across buckets), from which
  p50/p95/p99 are estimated via :meth:`Histogram.percentile`.
* :func:`collapse_stacks` / :func:`parse_collapsed` — the collapsed-stack
  format consumed by Brendan Gregg's ``flamegraph.pl`` and by speedscope:
  one ``a;b;c <value>`` line per unique stack, value = self time in
  integer microseconds.  ``repro-bus profile --flame out.txt`` writes it.

Spans that began but never ended (a workload aborted by an exception, a
killed process, a truncated trace file) are charged with the gap between
their ``span_begin`` timestamp and the last timestamp in the stream —
the same estimate :func:`repro.obs.manifest.charged_spans` uses — so a
crashed run still produces an honest profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.manifest import charged_spans
from repro.obs.metrics import Histogram, _label_key

#: Microseconds per second — span durations are floats of seconds, the
#: histogram buckets and collapsed-stack values are integer microseconds.
US_PER_S = 1_000_000


@dataclass
class ProfileNode:
    """One node of the profile tree: a unique span-name path."""

    name: str
    count: int = 0
    cum_s: float = 0.0
    self_s: float = 0.0
    errors: int = 0
    unclosed: int = 0
    children: Dict[str, "ProfileNode"] = field(default_factory=dict)

    def child(self, name: str) -> "ProfileNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = ProfileNode(name)
        return node

    def walk(
        self, path: Tuple[str, ...] = ()
    ) -> Iterable[Tuple[Tuple[str, ...], "ProfileNode"]]:
        """Depth-first ``(path, node)`` pairs, children in name order."""
        here = path + (self.name,)
        yield here, self
        for name in sorted(self.children):
            yield from self.children[name].walk(here)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "cum_s": self.cum_s,
            "self_s": self.self_s,
            "errors": self.errors,
            "unclosed": self.unclosed,
            "children": [
                self.children[name].to_dict()
                for name in sorted(self.children)
            ],
        }


ROOT_NAME = "(root)"


def _span_durations(
    events: Sequence[Dict[str, Any]],
) -> Tuple[
    Dict[int, str],
    Dict[int, Optional[int]],
    Dict[int, float],
    Dict[int, Dict[str, Any]],
]:
    """Names, parents and estimated durations of every span in ``events``.

    Returns ``(names, parents, durations, flags)`` where ``flags[id]``
    carries ``{"error": bool, "unclosed": bool}``.  Unclosed spans get
    the begin-to-last-timestamp estimate.
    """
    names: Dict[int, str] = {}
    parents: Dict[int, Optional[int]] = {}
    begin_ts: Dict[int, float] = {}
    durations: Dict[int, float] = {}
    flags: Dict[int, Dict[str, Any]] = {}
    last_ts: Optional[float] = None
    for entry in events:
        ts = entry.get("ts")
        if isinstance(ts, (int, float)):
            last_ts = ts if last_ts is None else max(last_ts, ts)
        kind = entry.get("type")
        if kind == "span_begin":
            span_id = entry["id"]
            names[span_id] = entry["name"]
            parents[span_id] = entry.get("parent")
            if isinstance(ts, (int, float)):
                begin_ts[span_id] = float(ts)
        elif kind == "span_end":
            span_id = entry.get("id")
            if not isinstance(span_id, int):
                continue
            names.setdefault(span_id, entry.get("name", "?"))
            parents.setdefault(span_id, entry.get("parent"))
            durations[span_id] = float(entry.get("dur_s", 0.0))
            flags[span_id] = {
                "error": entry.get("status") == "error",
                "unclosed": False,
            }
    for span_id in names:
        if span_id in durations:
            continue
        started = begin_ts.get(span_id)
        durations[span_id] = (
            max(0.0, last_ts - started)
            if started is not None and last_ts is not None
            else 0.0
        )
        flags[span_id] = {"error": False, "unclosed": True}
    return names, parents, durations, flags


def _span_path(
    span_id: int,
    names: Dict[int, str],
    parents: Dict[int, Optional[int]],
) -> Tuple[str, ...]:
    """The root-to-span chain of names (orphaned parents are skipped)."""
    chain: List[str] = []
    current: Optional[int] = span_id
    seen: set = set()
    while current is not None and current not in seen:
        seen.add(current)
        name = names.get(current)
        if name is not None:
            chain.append(name)
        current = parents.get(current)
    return tuple(reversed(chain))


def build_profile_tree(events: Sequence[Dict[str, Any]]) -> ProfileNode:
    """Aggregate a span event stream into a self/cumulative-time tree.

    Each unique span-name *path* becomes one node; a span contributes its
    wall time to its path's cumulative time, and the time not covered by
    its direct child spans to the path's self time.  Point events are
    ignored (they carry no duration).
    """
    names, parents, durations, flags = _span_durations(events)
    child_total: Dict[int, float] = {}
    for span_id, parent in parents.items():
        if parent is not None and parent in names:
            child_total[parent] = child_total.get(parent, 0.0) + durations.get(
                span_id, 0.0
            )
    root = ProfileNode(ROOT_NAME)
    for span_id, name in names.items():
        path = _span_path(span_id, names, parents)
        node = root
        for step in path:
            node = node.child(step)
        duration = durations.get(span_id, 0.0)
        node.count += 1
        node.cum_s += duration
        node.self_s += max(0.0, duration - child_total.get(span_id, 0.0))
        if flags.get(span_id, {}).get("error"):
            node.errors += 1
        if flags.get(span_id, {}).get("unclosed"):
            node.unclosed += 1
    # The synthetic root's cumulative time is the sum of its top-level
    # children (its self time stays zero: no span covers it).
    root.cum_s = sum(child.cum_s for child in root.children.values())
    root.count = sum(child.count for child in root.children.values())
    return root


def render_tree(
    root: ProfileNode,
    min_share: float = 0.0,
) -> str:
    """ASCII rendering of a profile tree, children by descending time."""
    total = root.cum_s or 1.0
    lines = [
        f"{'span':<40} {'cum (s)':>9} {'self (s)':>9} {'share':>6} {'calls':>7}"
    ]

    def emit(node: ProfileNode, depth: int) -> None:
        share = node.cum_s / total
        if depth and share < min_share:
            return
        label = ("  " * depth + node.name)[:40]
        suffix = ""
        if node.errors:
            suffix += f"  !{node.errors} error(s)"
        if node.unclosed:
            suffix += f"  ~{node.unclosed} unclosed"
        lines.append(
            f"{label:<40} {node.cum_s:>9.3f} {node.self_s:>9.3f} "
            f"{share:>6.1%} {node.count:>7d}{suffix}"
        )
        for child in sorted(
            node.children.values(), key=lambda n: -n.cum_s
        ):
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Per-span-kind percentiles
# ---------------------------------------------------------------------------


def span_histograms(
    events: Sequence[Dict[str, Any]],
    stage_names: Optional[Sequence[str]] = None,
) -> Dict[str, Histogram]:
    """One duration histogram per span kind over the *charged* spans.

    Durations are observed in microseconds so that sub-second spans
    spread across the power-of-two buckets instead of collapsing into
    bucket zero; convert percentiles back with ``/ 1e6``.  The charging
    rule (outermost-in-stage-set, unclosed spans estimated) matches
    :func:`repro.obs.manifest.aggregate_stages`, so the histogram counts
    agree with the stage table's span counts.
    """
    histograms: Dict[str, Histogram] = {}
    for name, wall_s, _closed in charged_spans(events, stage_names):
        histogram = histograms.get(name)
        if histogram is None:
            histogram = histograms[name] = Histogram(
                f"span.{name}.dur_us", _label_key({})
            )
        histogram.observe(wall_s * US_PER_S)
    return histograms


def span_percentiles(
    events: Sequence[Dict[str, Any]],
    stage_names: Optional[Sequence[str]] = None,
    quantiles: Sequence[float] = (0.50, 0.95, 0.99),
) -> Dict[str, Dict[str, float]]:
    """Per-span-kind ``{"p50": seconds, ...}`` estimated from buckets."""
    return {
        name: {
            f"p{int(q * 100)}": histogram.percentile(q) / US_PER_S
            for q in quantiles
        }
        for name, histogram in span_histograms(events, stage_names).items()
    }


# ---------------------------------------------------------------------------
# Collapsed stacks (flamegraph.pl / speedscope)
# ---------------------------------------------------------------------------

#: Stack frames are joined with ";" in collapsed output; a frame name
#: containing the separator would corrupt the format, so it is replaced.
_FRAME_SEPARATOR = ";"


def collapse_stacks(events: Sequence[Dict[str, Any]]) -> List[str]:
    """Collapsed-stack lines (``a;b;c <self-time-us>``) from span events.

    One line per unique span path carrying nonzero self time, sorted by
    path for determinism.  Values are integer microseconds of *self*
    time, so the flame graph's widths add up exactly like the profile
    tree's self column.  Feed the result to ``flamegraph.pl`` or paste
    it into speedscope.
    """
    root = build_profile_tree(events)
    lines: List[str] = []
    for path, node in root.walk():
        frames = [
            frame.replace(_FRAME_SEPARATOR, ",") for frame in path[1:]
        ]
        if not frames:
            continue
        value = int(round(node.self_s * US_PER_S))
        if value <= 0:
            continue
        lines.append(f"{_FRAME_SEPARATOR.join(frames)} {value}")
    return sorted(lines)


def parse_collapsed(text: str) -> Dict[Tuple[str, ...], int]:
    """Parse collapsed-stack text back into ``{(frame, ...): value_us}``.

    The round-trip partner of :func:`collapse_stacks` — used by the
    tests to prove the export is well-formed, and handy for asserting
    properties of a flame file without an external tool.
    """
    stacks: Dict[Tuple[str, ...], int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        stack_text, _, value_text = line.rpartition(" ")
        if not stack_text:
            raise ValueError(f"line {lineno}: no stack before the value")
        try:
            value = int(value_text)
        except ValueError:
            raise ValueError(
                f"line {lineno}: value {value_text!r} is not an integer"
            ) from None
        if value < 0:
            raise ValueError(f"line {lineno}: negative value {value}")
        frames = tuple(stack_text.split(_FRAME_SEPARATOR))
        if any(not frame for frame in frames):
            raise ValueError(f"line {lineno}: empty frame in {stack_text!r}")
        stacks[frames] = stacks.get(frames, 0) + value
    return stacks


def write_flame(path: Any, events: Sequence[Dict[str, Any]]) -> int:
    """Write collapsed stacks for ``events`` to ``path``; returns lines."""
    lines = collapse_stacks(events)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)
