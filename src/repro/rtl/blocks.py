"""Word-level structural building blocks.

These compose library gates into the datapath pieces the paper's codec
architectures need (Section 4.1): XOR difference words, population-count
trees (the Hamming-distance evaluator), the majority voter (a magnitude
comparator against a constant threshold), constant-stride incrementers,
equality comparators, registers and word multiplexers.

All word buses are lists of net ids, LSB first.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.rtl.gates import AND2, BUF, INV, MUX2, OR2, XNOR2, XOR2
from repro.rtl.netlist import NetId, Netlist


def buffer_word(nl: Netlist, word: Sequence[NetId]) -> List[NetId]:
    """A buffer per line (the binary 'encoder' is just this)."""
    return [nl.add_gate(BUF, net) for net in word]


def invert_word(nl: Netlist, word: Sequence[NetId]) -> List[NetId]:
    """Bitwise complement."""
    return [nl.add_gate(INV, net) for net in word]


def xor_word(
    nl: Netlist, a: Sequence[NetId], b: Sequence[NetId]
) -> List[NetId]:
    """Bitwise XOR of two equal-width words."""
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    return [nl.add_gate(XOR2, x, y) for x, y in zip(a, b)]


def mux_word(
    nl: Netlist, select: NetId, when_true: Sequence[NetId], when_false: Sequence[NetId]
) -> List[NetId]:
    """Word-wide 2:1 multiplexer."""
    if len(when_true) != len(when_false):
        raise ValueError(
            f"width mismatch: {len(when_true)} vs {len(when_false)}"
        )
    return [
        nl.add_gate(MUX2, select, t, f)
        for t, f in zip(when_true, when_false)
    ]


def register(
    nl: Netlist, width: int, init: int = 0, name: str = "reg"
) -> Tuple[List[int], List[NetId]]:
    """A bank of DFFs; returns ``(handles, q_nets)`` (drive with
    :func:`drive_register`)."""
    handles: List[int] = []
    q_nets: List[NetId] = []
    for i in range(width):
        handle, q = nl.add_dff(init=(init >> i) & 1, name=f"{name}[{i}]")
        handles.append(handle)
        q_nets.append(q)
    return handles, q_nets


def drive_register(
    nl: Netlist, handles: Sequence[int], d_word: Sequence[NetId]
) -> None:
    """Connect a register bank's D inputs."""
    if len(handles) != len(d_word):
        raise ValueError(f"width mismatch: {len(handles)} vs {len(d_word)}")
    for handle, net in zip(handles, d_word):
        nl.drive_dff(handle, net)


def half_adder(nl: Netlist, a: NetId, b: NetId) -> Tuple[NetId, NetId]:
    """Returns ``(sum, carry)``."""
    return nl.add_gate(XOR2, a, b), nl.add_gate(AND2, a, b)


def full_adder(nl: Netlist, a: NetId, b: NetId, c: NetId) -> Tuple[NetId, NetId]:
    """Returns ``(sum, carry)``."""
    ab = nl.add_gate(XOR2, a, b)
    total = nl.add_gate(XOR2, ab, c)
    carry = nl.add_gate(OR2, nl.add_gate(AND2, a, b), nl.add_gate(AND2, ab, c))
    return total, carry


def popcount(nl: Netlist, bits: Sequence[NetId]) -> List[NetId]:
    """Population count of ``bits`` as a binary word (LSB first).

    Built as a carry-save adder tree of full/half adders — the structure of
    the paper's Hamming-distance evaluator when fed the XOR difference word.
    """
    if not bits:
        return [nl.const(0)]
    # Each entry of `columns[w]` is a net of weight 2**w awaiting compression.
    columns: List[List[NetId]] = [list(bits)]
    while any(len(column) > 1 for column in columns):
        next_columns: List[List[NetId]] = [[] for _ in range(len(columns) + 1)]
        for weight, column in enumerate(columns):
            pending = list(column)
            while len(pending) >= 3:
                a, b, c = pending.pop(), pending.pop(), pending.pop()
                total, carry = full_adder(nl, a, b, c)
                next_columns[weight].append(total)
                next_columns[weight + 1].append(carry)
            if len(pending) == 2:
                a, b = pending.pop(), pending.pop()
                total, carry = half_adder(nl, a, b)
                next_columns[weight].append(total)
                next_columns[weight + 1].append(carry)
            elif pending:
                next_columns[weight].append(pending.pop())
        while next_columns and not next_columns[-1]:
            next_columns.pop()
        columns = next_columns
    return [column[0] if column else nl.const(0) for column in columns]


def greater_than_const(
    nl: Netlist, word: Sequence[NetId], threshold: int
) -> NetId:
    """Single net asserting ``word > threshold`` (unsigned).

    Classic MSB-first magnitude comparator: at each bit position the result
    is decided when the operand bit exceeds the constant bit, carried down
    through equality otherwise.  With the popcount word as input this is the
    paper's *majority voter*.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    if threshold >= (1 << len(word)):
        return nl.const(0)  # the word can never exceed the threshold
    result = nl.const(0)  # empty suffix: equal, not greater
    for position, bit in enumerate(word):  # LSB to MSB accumulation
        t_bit = (threshold >> position) & 1
        if t_bit:
            # word bit 1 and t bit 1 -> defer to lower bits (keep result)
            result = nl.add_gate(AND2, bit, result)
        else:
            # word bit 1 and t bit 0 -> greater regardless of lower bits
            result = nl.add_gate(OR2, bit, result)
    return result


def equal_words(
    nl: Netlist, a: Sequence[NetId], b: Sequence[NetId]
) -> NetId:
    """Single net asserting ``a == b``."""
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    terms = [nl.add_gate(XNOR2, x, y) for x, y in zip(a, b)]
    return and_reduce(nl, terms)


def and_reduce(nl: Netlist, bits: Sequence[NetId]) -> NetId:
    """Balanced AND tree."""
    nets = list(bits)
    if not nets:
        return nl.const(1)
    while len(nets) > 1:
        nets = [
            nl.add_gate(AND2, nets[i], nets[i + 1])
            if i + 1 < len(nets)
            else nets[i]
            for i in range(0, len(nets), 2)
        ]
    return nets[0]


def or_reduce(nl: Netlist, bits: Sequence[NetId]) -> NetId:
    """Balanced OR tree."""
    nets = list(bits)
    if not nets:
        return nl.const(0)
    while len(nets) > 1:
        nets = [
            nl.add_gate(OR2, nets[i], nets[i + 1])
            if i + 1 < len(nets)
            else nets[i]
            for i in range(0, len(nets), 2)
        ]
    return nets[0]


def add_const(
    nl: Netlist, word: Sequence[NetId], constant: int
) -> List[NetId]:
    """``word + constant`` modulo ``2**len(word)``.

    For the T0 family the constant is the stride ``S = 2**k``, so the adder
    reduces to an incrementer on the bits at and above position ``k``:
    ``carry into bit i = AND(word[k..i-1])``, built as a logarithmic-depth
    prefix-AND tree (the depth a synthesis tool would reach) rather than a
    32-level ripple — logic depth matters to the glitch-aware power model.
    General constants fall back to a ripple structure.
    """
    width = len(word)
    constant &= (1 << width) - 1
    if constant == 0:
        return [nl.add_gate(BUF, bit) for bit in word]
    if constant & (constant - 1) == 0:
        return _add_power_of_two(nl, word, constant.bit_length() - 1)
    return _add_ripple(nl, word, constant)


def _add_power_of_two(
    nl: Netlist, word: Sequence[NetId], k: int
) -> List[NetId]:
    width = len(word)
    result: List[NetId] = [nl.add_gate(BUF, word[i]) for i in range(k)]
    result.append(nl.add_gate(INV, word[k]))
    # prefixes[j] = AND(word[k .. k+j]) via a Kogge–Stone doubling tree:
    # log-depth, shared intermediate terms.  The carry chain only consumes
    # prefixes of word[k .. width-2], so the full-word prefix is never
    # built (it would be a dead gate — netlint rule NL004).
    prefixes: List[NetId] = list(word[k:-1])
    shift = 1
    while shift < len(prefixes):
        for j in range(len(prefixes) - 1, shift - 1, -1):
            prefixes[j] = nl.add_gate(AND2, prefixes[j], prefixes[j - shift])
        shift *= 2
    for i in range(k + 1, width):
        carry = prefixes[i - k - 1]
        result.append(nl.add_gate(XOR2, word[i], carry))
    return result


def _add_ripple(
    nl: Netlist, word: Sequence[NetId], constant: int
) -> List[NetId]:
    width = len(word)
    result: List[NetId] = []
    carry: NetId = nl.const(0)
    have_carry = False
    for position in range(width):
        bit = word[position]
        c_bit = (constant >> position) & 1
        if not have_carry:
            if c_bit:
                # First constant one: sum = ~bit, carry = bit.
                result.append(nl.add_gate(INV, bit))
                carry = bit
                have_carry = True
            else:
                result.append(nl.add_gate(BUF, bit))
        else:
            if c_bit:
                total = nl.add_gate(XNOR2, bit, carry)
                carry = nl.add_gate(OR2, bit, carry)
            else:
                total = nl.add_gate(XOR2, bit, carry)
                carry = nl.add_gate(AND2, bit, carry)
            result.append(total)
    return result
