"""Power estimation for structural netlists.

Two estimation modes, mirroring the paper's methodology (Synopsys Design
Power at 100 MHz on the synthesized codecs):

* **simulative** — run the cycle-based logic simulation on a concrete vector
  stream and charge every net toggle against its capacitive load, every gate
  output transition against the cell's internal energy, and every flip-flop
  against its per-cycle clock load;

* **probabilistic** — propagate (signal probability, switching activity)
  pairs through the gate graph under the spatial-independence assumption,
  iterating to a fixpoint across the register feedback loops.  This is the
  mode the paper used for its encoder numbers; the simulative mode serves as
  its cross-check in our tests.

Two physical effects the zero-delay functional values miss are modelled
explicitly, both calibrated for a 0.35 µm 3.3 V process:

* **wire capacitance** — every internal net carries a fixed routing load
  (``DEFAULT_WIRE_CAP``), substantial in a 0.35 µm technology;
* **glitch propagation** — uneven arrival times make combinational nodes
  transition more often than their final values do, and the surplus cascades:
  XOR-type cells pass every input transition to their output, AND/OR cells
  absorb about half, flip-flops filter them entirely.  We propagate an
  *effective transition density* ``D`` per net,

      ``D_out = min(final_out + gamma * pass(gate) * max(0, sum(D_in) - final_out), cap)``

  and charge internal capacitance and cell-internal energy at ``D`` while
  primary-output loads (bus wires, pads — large time constants that
  integrate sub-cycle glitches away) are charged at final-value toggles.
  This is what makes the deep, uncorrelated Hamming popcount tree of the
  bus-invert section an order of magnitude hungrier than the shallow,
  input-correlated T0 comparator — the relation the paper reports between
  the dual T0_BI and T0 encoders (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics
from repro.power.bus import DEFAULT_FREQUENCY_HZ, DEFAULT_VDD
from repro.rtl.gates import DFF, DFF_CLOCK_ENERGY
from repro.rtl.netlist import Netlist, SimulationResult

#: Routing capacitance charged to every internal net (farads).
DEFAULT_WIRE_CAP = 50e-15
#: Fraction of surplus input transitions that reach a cell output (gamma).
DEFAULT_GLITCH_FRACTION = 1.0
#: Physical ceiling on per-net transitions per cycle (slew-rate limit).
DEFAULT_GLITCH_CAP = 28.0

#: Per-cell glitch pass factor: how easily spurious input transitions
#: propagate to the output (XORs always, AND/OR only when enabled).
GATE_PASS_FACTOR: Dict[str, float] = {
    "INV": 1.0,
    "BUF": 1.0,
    "AND2": 0.5,
    "OR2": 0.5,
    "NAND2": 0.5,
    "NOR2": 0.5,
    "XOR2": 1.0,
    "XNOR2": 1.0,
    "MUX2": 0.6,
}


@dataclass(frozen=True)
class PowerEstimate:
    """Average power split into its physical components (watts)."""

    switching: float  # internal net capacitance charging/discharging
    external: float  # primary-output load charging/discharging
    internal: float  # cell-internal + short-circuit energy
    clock: float  # flip-flop clock load
    cycles: int

    @property
    def logic(self) -> float:
        """Power of the codec logic itself, excluding the driven load."""
        return self.switching + self.internal + self.clock

    @property
    def total(self) -> float:
        return self.switching + self.external + self.internal + self.clock


def effective_densities(
    netlist: Netlist,
    final_activities: Sequence[float],
    glitch_fraction: float = DEFAULT_GLITCH_FRACTION,
    glitch_cap: float = DEFAULT_GLITCH_CAP,
) -> List[float]:
    """Per-net effective transition density including propagated glitches.

    ``final_activities`` are the zero-delay (final-value) transitions per
    cycle of every net.  Flip-flop outputs and primary inputs keep their
    final values (flops filter glitches); each combinational gate adds the
    glitch surplus of its fanins scaled by its pass factor.
    """
    densities = [float(a) for a in final_activities]
    for gate in netlist._gates:
        final = final_activities[gate.output]
        total_in = sum(densities[net] for net in gate.inputs)
        pass_factor = GATE_PASS_FACTOR[gate.spec.name]
        surplus = max(0.0, total_in - final)
        densities[gate.output] = min(
            final + glitch_fraction * pass_factor * surplus, glitch_cap
        )
    return densities


def _assemble_estimate(
    netlist: Netlist,
    final_activities: Sequence[float],
    vdd: float,
    frequency_hz: float,
    output_load: float,
    wire_cap: float,
    glitch_fraction: float,
    glitch_cap: float,
    cycles: int,
) -> PowerEstimate:
    """Common power assembly from per-net final activities."""
    internal_loads, external_loads = netlist.net_loads_split(
        output_load=output_load, wire_cap=wire_cap
    )
    densities = effective_densities(
        netlist, final_activities, glitch_fraction, glitch_cap
    )
    half_v2 = 0.5 * vdd * vdd

    switching = sum(
        density * half_v2 * load
        for density, load in zip(densities, internal_loads)
    )
    external = sum(
        final * half_v2 * load
        for final, load in zip(final_activities, external_loads)
    )
    internal = sum(
        densities[gate.output] * gate.spec.internal_energy
        for gate in netlist._gates
    )
    internal += sum(
        final_activities[flop.q] * DFF.internal_energy
        for flop in netlist._flops
    )
    clock = DFF_CLOCK_ENERGY * netlist.flop_count

    return PowerEstimate(
        switching=switching * frequency_hz,
        external=external * frequency_hz,
        internal=internal * frequency_hz,
        clock=clock * frequency_hz,
        cycles=cycles,
    )


def estimate_from_simulation(
    result: SimulationResult,
    vdd: float = DEFAULT_VDD,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    output_load: float = 0.0,
    wire_cap: float = DEFAULT_WIRE_CAP,
    glitch_fraction: float = DEFAULT_GLITCH_FRACTION,
    glitch_cap: float = DEFAULT_GLITCH_CAP,
) -> PowerEstimate:
    """Toggle-count power of a completed simulation run."""
    if result.cycles <= 1:
        raise ValueError("need at least two cycles to estimate power")
    cycles = result.cycles - 1  # toggles are counted between cycles
    final_activities = [toggles / cycles for toggles in result.net_toggles]
    return _assemble_estimate(
        result.netlist,
        final_activities,
        vdd=vdd,
        frequency_hz=frequency_hz,
        output_load=output_load,
        wire_cap=wire_cap,
        glitch_fraction=glitch_fraction,
        glitch_cap=glitch_cap,
        cycles=result.cycles,
    )


# ---------------------------------------------------------------------------
# Probabilistic mode
# ---------------------------------------------------------------------------


def _propagate_gate(
    name: str, probs: Sequence[float], acts: Sequence[float]
) -> Tuple[float, float]:
    """(probability, activity) at a gate output from its input pairs.

    Activities combine through the Boolean-difference rule
    ``a_out = sum_i P(dF/dx_i) * a_i`` under input independence.
    """
    if name in ("INV", "BUF", "DFF"):
        p = probs[0] if name != "INV" else 1.0 - probs[0]
        return p, acts[0]
    if name in ("AND2", "NAND2"):
        p = probs[0] * probs[1]
        activity = probs[1] * acts[0] + probs[0] * acts[1]
        return (p if name == "AND2" else 1.0 - p), activity
    if name in ("OR2", "NOR2"):
        p = probs[0] + probs[1] - probs[0] * probs[1]
        activity = (1.0 - probs[1]) * acts[0] + (1.0 - probs[0]) * acts[1]
        return (p if name == "OR2" else 1.0 - p), activity
    if name in ("XOR2", "XNOR2"):
        p = probs[0] + probs[1] - 2.0 * probs[0] * probs[1]
        activity = acts[0] + acts[1]
        return (p if name == "XOR2" else 1.0 - p), activity
    if name == "MUX2":
        select_p, a_p, b_p = probs
        select_a, a_a, b_a = acts
        p = select_p * a_p + (1.0 - select_p) * b_p
        differ = a_p * (1.0 - b_p) + b_p * (1.0 - a_p)
        activity = select_p * a_a + (1.0 - select_p) * b_a + differ * select_a
        return p, activity
    raise ValueError(f"unknown gate type {name!r}")


def _clamp_activity(probability: float, activity: float) -> float:
    """Physical ceiling on a zero-delay transition density.

    A net that is 1 for a fraction ``p`` of the cycles can change its final
    value at most ``min(1, 2p, 2(1-p))`` times per cycle.  The additive XOR
    rule in :func:`_propagate_gate` double-counts simultaneous input
    toggles, which diverges through register feedback (the bus-invert
    ``bus_reg`` ← XOR ← ``bus_reg`` loop) unless bounded here.
    """
    bound = min(1.0, 2.0 * probability, 2.0 * (1.0 - probability))
    return min(activity, max(bound, 0.0))


def propagate_activities(
    netlist: Netlist,
    input_probabilities: Sequence[float],
    input_activities: Sequence[float],
    iterations: int = 30,
    tolerance: float = 1e-9,
) -> Tuple[List[float], List[float]]:
    """Per-net ``(probabilities, activities)`` under input independence.

    The static switching-activity engine shared by the probabilistic power
    mode and :mod:`repro.analysis.activity`: signal probabilities and
    transition densities propagate through the gate graph via the
    Boolean-difference rules of :func:`_propagate_gate`; register feedback
    is resolved by fixpoint iteration from an uninformative 0.5/0.5 prior.
    """
    netlist.validate()
    if len(input_probabilities) != len(netlist.inputs) or len(
        input_activities
    ) != len(netlist.inputs):
        raise ValueError(
            f"need {len(netlist.inputs)} probability/activity pairs"
        )

    probs = [0.0] * netlist.net_count
    acts = [0.0] * netlist.net_count
    for net, (p, a) in zip(
        netlist.inputs, zip(input_probabilities, input_activities)
    ):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability {p} outside [0, 1]")
        if a < 0.0:
            raise ValueError(f"activity {a} is negative")
        probs[net] = p
        acts[net] = a
    for value, net in netlist._const_nets.items():
        probs[net] = float(value)
        acts[net] = 0.0
    # Flop outputs start at an uninformative prior and iterate to fixpoint.
    for flop in netlist._flops:
        probs[flop.q] = 0.5
        acts[flop.q] = 0.5

    clamp_hits = 0
    for _ in range(iterations):
        for gate in netlist._gates:
            p, a = _propagate_gate(
                gate.spec.name,
                [probs[i] for i in gate.inputs],
                [acts[i] for i in gate.inputs],
            )
            clamped = _clamp_activity(p, a)
            if clamped < a:
                clamp_hits += 1
            probs[gate.output], acts[gate.output] = p, clamped
        delta = 0.0
        for flop in netlist._flops:
            new_p, new_a = probs[flop.d], acts[flop.d]  # type: ignore[index]
            delta = max(
                delta, abs(new_p - probs[flop.q]), abs(new_a - acts[flop.q])
            )
            probs[flop.q] = new_p
            acts[flop.q] = new_a
        if delta < tolerance:
            break
    # Final combinational pass with the settled register state.
    for gate in netlist._gates:
        p, a = _propagate_gate(
            gate.spec.name,
            [probs[i] for i in gate.inputs],
            [acts[i] for i in gate.inputs],
        )
        clamped = _clamp_activity(p, a)
        if clamped < a:
            clamp_hits += 1
        probs[gate.output], acts[gate.output] = p, clamped
    if clamp_hits:
        obs_metrics.counter("activity.clamps").inc(clamp_hits)
    return probs, acts


def estimate_probabilistic(
    netlist: Netlist,
    input_probabilities: Sequence[float],
    input_activities: Sequence[float],
    vdd: float = DEFAULT_VDD,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    output_load: float = 0.0,
    wire_cap: float = DEFAULT_WIRE_CAP,
    glitch_fraction: float = DEFAULT_GLITCH_FRACTION,
    glitch_cap: float = DEFAULT_GLITCH_CAP,
    iterations: int = 30,
    tolerance: float = 1e-9,
) -> PowerEstimate:
    """Activity-propagation power estimate.

    ``input_probabilities``/``input_activities`` are per primary input, in
    :attr:`Netlist.inputs` order; activities are expected transitions per
    clock cycle.  Register feedback is resolved by fixpoint iteration.
    """
    _, acts = propagate_activities(
        netlist,
        input_probabilities,
        input_activities,
        iterations=iterations,
        tolerance=tolerance,
    )

    return _assemble_estimate(
        netlist,
        acts,
        vdd=vdd,
        frequency_hz=frequency_hz,
        output_load=output_load,
        wire_cap=wire_cap,
        glitch_fraction=glitch_fraction,
        glitch_cap=glitch_cap,
        cycles=0,
    )


def stream_line_statistics(
    values: Sequence[int], width: int
) -> Tuple[List[float], List[float]]:
    """Per-line (probability, activity) of a word stream — the reference
    switching activities fed to the probabilistic mode."""
    if not values:
        raise ValueError("empty stream")
    ones = [0] * width
    toggles = [0] * width
    previous: Optional[int] = None
    for value in values:
        for bit in range(width):
            if (value >> bit) & 1:
                ones[bit] += 1
        if previous is not None:
            diff = value ^ previous
            for bit in range(width):
                if (diff >> bit) & 1:
                    toggles[bit] += 1
        previous = value
    count = len(values)
    cycles = max(count - 1, 1)
    return (
        [one / count for one in ones],
        [toggle / cycles for toggle in toggles],
    )
