"""Structural (gate-level) codec circuits — paper Section 4.1.

Builders for the encoder/decoder netlists of the binary, T0, bus-invert,
dual T0 and dual T0_BI codes, assembled from the library blocks:

* the T0 section is a previous-address register, a constant-stride
  incrementer and an equality comparator producing ``INC``;
* the bus-invert section is a Hamming-distance evaluator (XOR word into a
  carry-save popcount tree) followed by a majority voter (magnitude
  comparator against ``N/2``) producing ``INV``;
* the output stage is a word multiplexer steered by ``SEL`` and
  ``INCV = INC + INV`` with XOR-based conditional inversion.

Every circuit is functionally equivalent to its behavioural model in
:mod:`repro.core` (verified by the integration tests), so the power numbers
of Tables 8/9 are measured on hardware that provably implements the codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.base import SEL_INSTRUCTION
from repro.core.word import EncodedWord
from repro.rtl import blocks
from repro.rtl.gates import AND2, INV, OR2, XOR2
from repro.rtl.netlist import Netlist, NetId, SimulationResult


def _int_to_bits(value: int, width: int) -> List[int]:
    return [(value >> i) & 1 for i in range(width)]


def _bits_to_int(bits: Sequence[int]) -> int:
    value = 0
    for index, bit in enumerate(bits):
        value |= bit << index
    return value


def _output_names(netlist: Netlist) -> List[str]:
    return [name for name, _ in netlist.outputs]


def _input_names(netlist: Netlist) -> List[str]:
    return [netlist.net_name(net) for net in netlist.inputs]


def _bus_width(names: Sequence[str], prefix: str) -> int:
    """Length of the contiguous ``prefix[0..n-1]`` word within ``names``."""
    present = set(names)
    width = 0
    while f"{prefix}[{width}]" in present:
        width += 1
    return width


@dataclass
class EncoderCircuit:
    """A gate-level encoder plus the harness to drive it.

    ``width``, ``extra_lines`` and ``uses_sel`` are *derived* from the
    netlist's primary input/output lists — the netlist is the single
    source of truth, so the metadata cannot drift from the circuit (the
    historical failure mode rule CK001/CK002 linted for).
    """

    name: str
    netlist: Netlist

    @property
    def width(self) -> int:
        """Bus width: the length of the ``B[...]`` output word."""
        return _bus_width(_output_names(self.netlist), "B")

    @property
    def extra_lines(self) -> Tuple[str, ...]:
        """Redundant-line outputs, in output order (after the bus word)."""
        return tuple(
            name
            for name in _output_names(self.netlist)
            if not name.startswith("B[")
        )

    @property
    def uses_sel(self) -> bool:
        """True when the circuit takes the instruction/data ``SEL`` pin."""
        return "SEL" in _input_names(self.netlist)

    def run(
        self,
        addresses: Sequence[int],
        sels: Optional[Sequence[int]] = None,
    ) -> Tuple[SimulationResult, List[EncodedWord]]:
        """Simulate the encoder over an address stream.

        Returns the raw simulation result (for power estimation) and the
        encoded words recovered from the primary outputs.
        """
        vectors = []
        for index, address in enumerate(addresses):
            vector = _int_to_bits(address, self.width)
            if self.uses_sel:
                sel = SEL_INSTRUCTION if sels is None else sels[index]
                vector.append(sel)
            vectors.append(vector)
        result = self.netlist.simulate(vectors)
        words = []
        extra_count = len(self.extra_lines)
        for row in result.outputs:
            bus = _bits_to_int(row[: self.width])
            extras = tuple(row[self.width : self.width + extra_count])
            words.append(EncodedWord(bus, extras))
        return result, words


@dataclass
class DecoderCircuit:
    """A gate-level decoder plus the harness to drive it.

    Metadata derives from the netlist exactly as for
    :class:`EncoderCircuit`; a decoder's redundant lines are its primary
    *inputs* beyond the bus word and ``SEL``.
    """

    name: str
    netlist: Netlist

    @property
    def width(self) -> int:
        """Bus width: the length of the ``addr[...]`` output word."""
        return _bus_width(_output_names(self.netlist), "addr")

    @property
    def extra_lines(self) -> Tuple[str, ...]:
        """Redundant-line inputs, in input order (after the bus word)."""
        return tuple(
            name
            for name in _input_names(self.netlist)
            if not name.startswith("B[") and name != "SEL"
        )

    @property
    def uses_sel(self) -> bool:
        """True when the circuit takes the instruction/data ``SEL`` pin."""
        return "SEL" in _input_names(self.netlist)

    def run(
        self,
        words: Sequence[EncodedWord],
        sels: Optional[Sequence[int]] = None,
    ) -> Tuple[SimulationResult, List[int]]:
        """Simulate the decoder over an encoded word stream."""
        vectors = []
        for index, word in enumerate(words):
            vector = _int_to_bits(word.bus, self.width)
            vector.extend(word.extras)
            if self.uses_sel:
                sel = SEL_INSTRUCTION if sels is None else sels[index]
                vector.append(sel)
            vectors.append(vector)
        result = self.netlist.simulate(vectors)
        addresses = [_bits_to_int(row[: self.width]) for row in result.outputs]
        return result, addresses


# ---------------------------------------------------------------------------
# Binary
# ---------------------------------------------------------------------------


def build_binary_encoder(width: int = 32) -> EncoderCircuit:
    """The binary 'encoder': one buffer per line (drives the bus/pads)."""
    nl = Netlist("binary-encoder")
    address = nl.add_inputs("b", width)
    for index, net in enumerate(blocks.buffer_word(nl, address)):
        nl.mark_output(net, f"B[{index}]")
    return EncoderCircuit("binary", nl)


def build_binary_decoder(width: int = 32) -> DecoderCircuit:
    """The binary 'decoder': input buffers."""
    nl = Netlist("binary-decoder")
    bus = nl.add_inputs("B", width)
    for index, net in enumerate(blocks.buffer_word(nl, bus)):
        nl.mark_output(net, f"addr[{index}]")
    return DecoderCircuit("binary", nl)


# ---------------------------------------------------------------------------
# T0
# ---------------------------------------------------------------------------


def build_t0_encoder(width: int = 32, stride: int = 4) -> EncoderCircuit:
    """T0 encoder: previous-address register + incrementer + comparator."""
    nl = Netlist("t0-encoder")
    address = nl.add_inputs("b", width)

    prev_handles, prev_q = blocks.register(nl, width, name="prev_addr")
    bus_handles, bus_q = blocks.register(nl, width, name="bus_reg")
    valid_handle, valid_q = nl.add_dff(init=0, name="valid")

    prediction = blocks.add_const(nl, prev_q, stride)
    is_sequential = blocks.equal_words(nl, address, prediction)
    inc = nl.add_gate(AND2, is_sequential, valid_q, name="INC")

    bus_out = blocks.mux_word(nl, inc, bus_q, address)

    blocks.drive_register(nl, prev_handles, address)
    blocks.drive_register(nl, bus_handles, bus_out)
    nl.drive_dff(valid_handle, nl.const(1))

    for index, net in enumerate(bus_out):
        nl.mark_output(net, f"B[{index}]")
    nl.mark_output(inc, "INC")
    return EncoderCircuit("t0", nl)


def build_t0_decoder(width: int = 32, stride: int = 4) -> DecoderCircuit:
    """T0 decoder: previous-address register + incrementer + mux."""
    nl = Netlist("t0-decoder")
    bus = nl.add_inputs("B", width)
    inc = nl.add_input("INC")

    prev_handles, prev_q = blocks.register(nl, width, name="prev_addr")
    prediction = blocks.add_const(nl, prev_q, stride)
    address = blocks.mux_word(nl, inc, prediction, bus)
    blocks.drive_register(nl, prev_handles, address)

    for index, net in enumerate(address):
        nl.mark_output(net, f"addr[{index}]")
    return DecoderCircuit("t0", nl)


# ---------------------------------------------------------------------------
# Bus-invert
# ---------------------------------------------------------------------------


def _majority_voter(
    nl: Netlist,
    difference_bits: Sequence[NetId],
    threshold: int,
) -> NetId:
    """Popcount the difference word and compare against ``threshold``."""
    count = blocks.popcount(nl, difference_bits)
    return blocks.greater_than_const(nl, count, threshold)


def build_businvert_encoder(width: int = 32) -> EncoderCircuit:
    """Bus-invert encoder: Hamming evaluator + majority voter + XOR stage."""
    nl = Netlist("businvert-encoder")
    address = nl.add_inputs("b", width)

    bus_handles, bus_q = blocks.register(nl, width, name="bus_reg")
    inv_handle, inv_q = nl.add_dff(init=0, name="inv_reg")

    difference = blocks.xor_word(nl, bus_q, address)
    # H counts the INV wire too: previous INV vs candidate 0 adds inv_q.
    invert = _majority_voter(nl, list(difference) + [inv_q], width // 2)

    bus_out = [nl.add_gate(XOR2, bit, invert) for bit in address]
    blocks.drive_register(nl, bus_handles, bus_out)
    nl.drive_dff(inv_handle, invert)

    for index, net in enumerate(bus_out):
        nl.mark_output(net, f"B[{index}]")
    nl.mark_output(invert, "INV")
    return EncoderCircuit("bus-invert", nl)


def build_businvert_decoder(width: int = 32) -> DecoderCircuit:
    """Bus-invert decoder: conditional re-inversion."""
    nl = Netlist("businvert-decoder")
    bus = nl.add_inputs("B", width)
    inv = nl.add_input("INV")
    for index, bit in enumerate(bus):
        nl.mark_output(nl.add_gate(XOR2, bit, inv), f"addr[{index}]")
    return DecoderCircuit("bus-invert", nl)


# ---------------------------------------------------------------------------
# T0_BI
# ---------------------------------------------------------------------------


def build_t0bi_encoder(width: int = 32, stride: int = 4) -> EncoderCircuit:
    """T0_BI encoder: T0 section + bus-invert section, two redundant lines.

    The Hamming evaluator spans ``N + 2`` wires (bus, INC, INV) and the
    majority voter threshold is ``(N + 2) / 2`` (paper Equation 6).
    """
    nl = Netlist("t0bi-encoder")
    address = nl.add_inputs("b", width)

    prev_handles, prev_q = blocks.register(nl, width, name="prev_addr")
    bus_handles, bus_q = blocks.register(nl, width, name="bus_reg")
    inc_handle, inc_q = nl.add_dff(init=0, name="inc_reg")
    inv_handle, inv_q = nl.add_dff(init=0, name="inv_reg")
    valid_handle, valid_q = nl.add_dff(init=0, name="valid")

    # T0 section.
    prediction = blocks.add_const(nl, prev_q, stride)
    is_sequential = blocks.equal_words(nl, address, prediction)
    inc = nl.add_gate(AND2, is_sequential, valid_q, name="INC")
    not_inc = nl.add_gate(INV, inc)

    # Bus-invert section over N + 2 wires.
    difference = blocks.xor_word(nl, bus_q, address)
    majority = _majority_voter(
        nl, list(difference) + [inc_q, inv_q], (width + 2) // 2
    )
    inv = nl.add_gate(AND2, not_inc, majority, name="INV")

    inverted = [nl.add_gate(XOR2, bit, inv) for bit in address]
    bus_out = blocks.mux_word(nl, inc, bus_q, inverted)

    blocks.drive_register(nl, prev_handles, address)
    blocks.drive_register(nl, bus_handles, bus_out)
    nl.drive_dff(inc_handle, inc)
    nl.drive_dff(inv_handle, inv)
    nl.drive_dff(valid_handle, nl.const(1))

    for index, net in enumerate(bus_out):
        nl.mark_output(net, f"B[{index}]")
    nl.mark_output(inc, "INC")
    nl.mark_output(inv, "INV")
    return EncoderCircuit("t0bi", nl)


def build_t0bi_decoder(width: int = 32, stride: int = 4) -> DecoderCircuit:
    """T0_BI decoder (paper Equation 7)."""
    nl = Netlist("t0bi-decoder")
    bus = nl.add_inputs("B", width)
    inc = nl.add_input("INC")
    inv = nl.add_input("INV")

    prev_handles, prev_q = blocks.register(nl, width, name="prev_addr")
    prediction = blocks.add_const(nl, prev_q, stride)
    uninverted = [nl.add_gate(XOR2, bit, inv) for bit in bus]
    address = blocks.mux_word(nl, inc, prediction, uninverted)
    blocks.drive_register(nl, prev_handles, address)

    for index, net in enumerate(address):
        nl.mark_output(net, f"addr[{index}]")
    return DecoderCircuit("t0bi", nl)


# ---------------------------------------------------------------------------
# Dual T0
# ---------------------------------------------------------------------------


def build_dualt0_encoder(width: int = 32, stride: int = 4) -> EncoderCircuit:
    """Dual T0 encoder: T0 section gated by SEL, SEL-enabled reference reg."""
    nl = Netlist("dualt0-encoder")
    address = nl.add_inputs("b", width)
    sel = nl.add_input("SEL")

    ref_handles, ref_q = blocks.register(nl, width, name="ref_addr")
    bus_handles, bus_q = blocks.register(nl, width, name="bus_reg")
    valid_handle, valid_q = nl.add_dff(init=0, name="ref_valid")

    prediction = blocks.add_const(nl, ref_q, stride)
    is_sequential = blocks.equal_words(nl, address, prediction)
    inc = nl.add_gate(
        AND2, sel, nl.add_gate(AND2, is_sequential, valid_q), name="INC"
    )

    bus_out = blocks.mux_word(nl, inc, bus_q, address)

    # Reference register holds unless SEL is asserted (Equation 9).
    blocks.drive_register(
        nl, ref_handles, blocks.mux_word(nl, sel, address, ref_q)
    )
    blocks.drive_register(nl, bus_handles, bus_out)
    nl.drive_dff(valid_handle, nl.add_gate(OR2, sel, valid_q))

    for index, net in enumerate(bus_out):
        nl.mark_output(net, f"B[{index}]")
    nl.mark_output(inc, "INC")
    return EncoderCircuit("dualt0", nl)


def build_dualt0_decoder(width: int = 32, stride: int = 4) -> DecoderCircuit:
    """Dual T0 decoder (Equation 10)."""
    nl = Netlist("dualt0-decoder")
    bus = nl.add_inputs("B", width)
    inc = nl.add_input("INC")
    sel = nl.add_input("SEL")

    ref_handles, ref_q = blocks.register(nl, width, name="ref_addr")
    prediction = blocks.add_const(nl, ref_q, stride)
    address = blocks.mux_word(nl, inc, prediction, bus)
    blocks.drive_register(
        nl, ref_handles, blocks.mux_word(nl, sel, address, ref_q)
    )

    for index, net in enumerate(address):
        nl.mark_output(net, f"addr[{index}]")
    return DecoderCircuit("dualt0", nl)


# ---------------------------------------------------------------------------
# Dual T0_BI
# ---------------------------------------------------------------------------


def build_dualt0bi_encoder(width: int = 32, stride: int = 4) -> EncoderCircuit:
    """Dual T0_BI encoder (paper Section 4.1 architecture).

    A T0 section producing ``INC``, a bus-invert section producing ``INV``
    and the output multiplexer steered by ``SEL`` and ``INCV = INC + INV``.
    """
    nl = Netlist("dualt0bi-encoder")
    address = nl.add_inputs("b", width)
    sel = nl.add_input("SEL")
    not_sel = nl.add_gate(INV, sel)

    ref_handles, ref_q = blocks.register(nl, width, name="ref_addr")
    bus_handles, bus_q = blocks.register(nl, width, name="bus_reg")
    incv_handle, incv_q = nl.add_dff(init=0, name="incv_reg")
    valid_handle, valid_q = nl.add_dff(init=0, name="ref_valid")

    # T0 section.
    prediction = blocks.add_const(nl, ref_q, stride)
    is_sequential = blocks.equal_words(nl, address, prediction)
    inc = nl.add_gate(
        AND2, sel, nl.add_gate(AND2, is_sequential, valid_q), name="INC"
    )

    # Bus-invert section: H over the N+1 wires (B | INCV).
    difference = blocks.xor_word(nl, bus_q, address)
    majority = _majority_voter(nl, list(difference) + [incv_q], width // 2)
    inv = nl.add_gate(AND2, not_sel, majority, name="INV")

    incv = nl.add_gate(OR2, inc, inv, name="INCV")

    # Output stage: conditional inversion then hold-mux.
    inverted = [nl.add_gate(XOR2, bit, inv) for bit in address]
    bus_out = blocks.mux_word(nl, inc, bus_q, inverted)

    blocks.drive_register(
        nl, ref_handles, blocks.mux_word(nl, sel, address, ref_q)
    )
    blocks.drive_register(nl, bus_handles, bus_out)
    nl.drive_dff(incv_handle, incv)
    nl.drive_dff(valid_handle, nl.add_gate(OR2, sel, valid_q))

    for index, net in enumerate(bus_out):
        nl.mark_output(net, f"B[{index}]")
    nl.mark_output(incv, "INCV")
    return EncoderCircuit("dualt0bi", nl)


def build_dualt0bi_decoder(width: int = 32, stride: int = 4) -> DecoderCircuit:
    """Dual T0_BI decoder (Equation 12, typo corrected)."""
    nl = Netlist("dualt0bi-decoder")
    bus = nl.add_inputs("B", width)
    incv = nl.add_input("INCV")
    sel = nl.add_input("SEL")
    not_sel = nl.add_gate(INV, sel)

    ref_handles, ref_q = blocks.register(nl, width, name="ref_addr")
    prediction = blocks.add_const(nl, ref_q, stride)

    use_prediction = nl.add_gate(AND2, incv, sel)
    use_inversion = nl.add_gate(AND2, incv, not_sel)
    uninverted = [nl.add_gate(XOR2, bit, use_inversion) for bit in bus]
    address = blocks.mux_word(nl, use_prediction, prediction, uninverted)

    blocks.drive_register(
        nl, ref_handles, blocks.mux_word(nl, sel, address, ref_q)
    )

    for index, net in enumerate(address):
        nl.mark_output(net, f"addr[{index}]")
    return DecoderCircuit("dualt0bi", nl)


#: Builders keyed by code name — the circuits Tables 8/9 sweep.
ENCODER_BUILDERS = {
    "binary": build_binary_encoder,
    "t0": build_t0_encoder,
    "t0bi": build_t0bi_encoder,
    "bus-invert": build_businvert_encoder,
    "dualt0": build_dualt0_encoder,
    "dualt0bi": build_dualt0bi_encoder,
}

DECODER_BUILDERS = {
    "binary": build_binary_decoder,
    "t0": build_t0_decoder,
    "t0bi": build_t0bi_decoder,
    "bus-invert": build_businvert_decoder,
    "dualt0": build_dualt0_decoder,
    "dualt0bi": build_dualt0bi_decoder,
}
