"""I/O pad model for off-chip buses (paper Section 4.3).

Pads are "usually the most power consuming part of the entire chip": each
output pad drives the external trace/pin capacitance (tens of pF) plus its
own driver stages.  The paper's figures: an 8 mA output pad presents 0.01 pF
of input capacitance to the core logic; input-pad power at the receiver is
negligible next to the driver side and is ignored, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.power.bus import DEFAULT_FREQUENCY_HZ, DEFAULT_VDD

#: Input capacitance an output pad presents to the on-chip driver (paper value).
PAD_INPUT_CAP = 0.01e-12
#: Self-capacitance of the pad's output stage (bond pad + driver drain).
PAD_SELF_CAP = 4e-12
#: Internal (pre-driver chain) energy per pad output transition.
PAD_INTERNAL_ENERGY = 2.0e-12


@dataclass(frozen=True)
class OutputPadBank:
    """A bank of identical output pads driving the same external load."""

    lines: int
    external_load: float  # farads per line
    vdd: float = DEFAULT_VDD
    frequency_hz: float = DEFAULT_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.lines <= 0:
            raise ValueError(f"pad bank needs >= 1 line, got {self.lines}")
        if self.external_load < 0:
            raise ValueError(
                f"external load cannot be negative, got {self.external_load}"
            )

    @property
    def energy_per_transition(self) -> float:
        """Joules dissipated when one pad output toggles."""
        capacitive = 0.5 * (self.external_load + PAD_SELF_CAP) * self.vdd**2
        return capacitive + PAD_INTERNAL_ENERGY

    def power(self, transitions_per_cycle: float) -> float:
        """Average watts for a bank-wide transitions-per-cycle figure."""
        if transitions_per_cycle < 0:
            raise ValueError("transitions per cycle cannot be negative")
        return (
            transitions_per_cycle
            * self.energy_per_transition
            * self.frequency_hz
        )

    def power_from_activities(self, activities: Sequence[float]) -> float:
        """Average watts given each line's transitions-per-cycle activity."""
        if len(activities) != self.lines:
            raise ValueError(
                f"expected {self.lines} activities, got {len(activities)}"
            )
        return self.power(sum(activities))
