"""Structural netlists with cycle-based logic simulation.

A :class:`Netlist` is a feed-forward graph of library gates plus D
flip-flops.  Construction is single-assignment: a gate's fanins must already
exist when the gate is added, so insertion order is a valid topological order
for the combinational logic; flip-flop outputs are state and may feed gates
added before their D input is connected (two-phase construction via
:meth:`Netlist.add_dff` / :meth:`Netlist.drive_dff`).

Simulation is zero-delay cycle-based: each clock cycle the combinational
gates settle once in topological order and every net's *final* value is
compared with the previous cycle's to count toggles.  Glitches are not
modelled — the same simplification Synopsys' probabilistic mode makes, and a
conservative one for the codec circuits whose logic depth is small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rtl.gates import DFF, GateSpec

NetId = int


@dataclass
class _Gate:
    spec: GateSpec
    inputs: Tuple[NetId, ...]
    output: NetId


@dataclass
class _Flop:
    d: Optional[NetId]
    q: NetId
    init: int


class Netlist:
    """A gate-level circuit with primary I/O, combinational gates and DFFs."""

    def __init__(self, name: str = "netlist"):
        self.name = name
        self._net_names: List[str] = []
        self._inputs: List[NetId] = []
        self._outputs: List[Tuple[str, NetId]] = []
        self._gates: List[_Gate] = []
        self._flops: List[_Flop] = []
        self._const_nets: Dict[int, NetId] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _new_net(self, name: str) -> NetId:
        self._net_names.append(name)
        return len(self._net_names) - 1

    def add_input(self, name: str) -> NetId:
        """Create a primary input net."""
        net = self._new_net(name)
        self._inputs.append(net)
        return net

    def add_inputs(self, prefix: str, count: int) -> List[NetId]:
        """Create a bus of primary inputs, LSB first."""
        return [self.add_input(f"{prefix}[{i}]") for i in range(count)]

    def const(self, value: int) -> NetId:
        """The shared constant-0 or constant-1 net."""
        if value not in (0, 1):
            raise ValueError(f"constant must be 0 or 1, got {value}")
        if value not in self._const_nets:
            self._const_nets[value] = self._new_net(f"const{value}")
        return self._const_nets[value]

    def add_gate(self, spec: GateSpec, *inputs: NetId, name: str = "") -> NetId:
        """Add a combinational gate; returns its output net."""
        if spec.name == "DFF":
            raise ValueError("use add_dff()/drive_dff() for flip-flops")
        if len(inputs) != spec.arity:
            raise ValueError(
                f"{spec.name} expects {spec.arity} inputs, got {len(inputs)}"
            )
        for net in inputs:
            self._check_net(net)
        output = self._new_net(name or f"{spec.name.lower()}_{len(self._gates)}")
        self._gates.append(_Gate(spec, tuple(inputs), output))
        return output

    def add_dff(self, init: int = 0, name: str = "") -> Tuple[int, NetId]:
        """Create a flip-flop; returns ``(flop_handle, q_net)``.

        The D input is connected later with :meth:`drive_dff`, allowing
        feedback through combinational logic built after the flop.
        """
        if init not in (0, 1):
            raise ValueError(f"flop init must be 0 or 1, got {init}")
        q = self._new_net(name or f"dff_{len(self._flops)}_q")
        self._flops.append(_Flop(d=None, q=q, init=init))
        return len(self._flops) - 1, q

    def drive_dff(self, handle: int, d_net: NetId) -> None:
        """Connect a flip-flop's D input."""
        self._check_net(d_net)
        flop = self._flops[handle]
        if flop.d is not None:
            raise ValueError(f"flop {handle} already driven")
        flop.d = d_net

    def mark_output(self, net: NetId, name: str) -> None:
        """Declare a primary output."""
        self._check_net(net)
        self._outputs.append((name, net))

    def _check_net(self, net: NetId) -> None:
        if not 0 <= net < len(self._net_names):
            raise ValueError(f"unknown net id {net}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def net_count(self) -> int:
        return len(self._net_names)

    @property
    def gate_count(self) -> int:
        return len(self._gates)

    @property
    def flop_count(self) -> int:
        return len(self._flops)

    @property
    def inputs(self) -> List[NetId]:
        return list(self._inputs)

    @property
    def outputs(self) -> List[Tuple[str, NetId]]:
        return list(self._outputs)

    @property
    def gates(self) -> List[Tuple[GateSpec, Tuple[NetId, ...], NetId]]:
        """Combinational gates as ``(spec, inputs, output)``, in topological
        (= insertion) order — the traversal every analysis pass needs."""
        return [(g.spec, g.inputs, g.output) for g in self._gates]

    @property
    def flops(self) -> List[Tuple[Optional[NetId], NetId, int]]:
        """Flip-flops as ``(d, q, init)``; ``d`` is None while undriven."""
        return [(f.d, f.q, f.init) for f in self._flops]

    @property
    def const_nets(self) -> Dict[int, NetId]:
        """Constant value (0/1) → net id, for the constants in use."""
        return dict(self._const_nets)

    def net_name(self, net: NetId) -> str:
        return self._net_names[net]

    def net_loads(self, output_load: float = 0.0) -> List[float]:
        """Capacitance seen by each net: fanin gate pins + PO loads."""
        internal, external = self.net_loads_split(output_load)
        return [i + e for i, e in zip(internal, external)]

    def net_loads_split(
        self, output_load: float = 0.0, wire_cap: float = 0.0
    ) -> Tuple[List[float], List[float]]:
        """``(internal, external)`` capacitance per net.

        Internal load = fanin gate pins + driver intrinsic + wire; external
        load = the per-primary-output ``output_load``.  The split matters for
        glitch accounting: internal nodes see every spurious transition while
        large external loads integrate them away (see power.py).
        """
        internal = [0.0] * self.net_count
        external = [0.0] * self.net_count
        for gate in self._gates:
            for net in gate.inputs:
                internal[net] += gate.spec.input_cap
            internal[gate.output] += gate.spec.intrinsic_cap + wire_cap
        for flop in self._flops:
            if flop.d is not None:
                internal[flop.d] += DFF.input_cap
            internal[flop.q] += DFF.intrinsic_cap + wire_cap
        for _, net in self._outputs:
            external[net] += output_load
        return internal, external

    def combinational_depths(self) -> List[int]:
        """Logic depth of each net: 0 at PIs/flop outputs/constants, else
        1 + max(input depths).  Drives the glitch-amplification model."""
        depths = [0] * self.net_count
        for gate in self._gates:
            depths[gate.output] = 1 + max(
                (depths[net] for net in gate.inputs), default=0
            )
        return depths

    def arrival_times(self) -> List[float]:
        """Static timing: worst-case signal arrival at every net (seconds).

        Primary inputs arrive at t = 0, flip-flop outputs at clock-to-Q,
        every gate adds its propagation delay.  Single-corner, load-
        independent cell delays — the granularity of a synthesis report.
        """
        from repro.rtl.gates import DFF_CLK_TO_Q

        arrivals = [0.0] * self.net_count
        for flop in self._flops:
            arrivals[flop.q] = DFF_CLK_TO_Q
        for gate in self._gates:
            arrivals[gate.output] = gate.spec.delay + max(
                (arrivals[net] for net in gate.inputs), default=0.0
            )
        return arrivals

    def area_nand2(self) -> float:
        """Cell area in NAND2 equivalents (the synthesis-report unit).

        Weights: INV/BUF 0.7, simple 2-input cells 1.0, XOR/XNOR 2.5,
        MUX2 2.0, DFF 5.0 — typical standard-cell ratios.
        """
        weights = {
            "INV": 0.7,
            "BUF": 0.7,
            "AND2": 1.0,
            "OR2": 1.0,
            "NAND2": 1.0,
            "NOR2": 1.0,
            "XOR2": 2.5,
            "XNOR2": 2.5,
            "MUX2": 2.0,
        }
        area = sum(weights[gate.spec.name] for gate in self._gates)
        return area + 5.0 * self.flop_count

    def critical_path_ns(self) -> float:
        """Worst register-to-register / input-to-output path in nanoseconds.

        The paper reports this figure for the dual T0_BI encoder (5.36 ns
        through the bus-invert section and the output mux in 0.35 µm).
        """
        from repro.rtl.gates import DFF_SETUP

        arrivals = self.arrival_times()
        worst = 0.0
        for _, net in self._outputs:
            worst = max(worst, arrivals[net])
        for flop in self._flops:
            if flop.d is not None:
                worst = max(worst, arrivals[flop.d] + DFF_SETUP)
        return worst * 1e9

    def validate(self) -> None:
        """Check the netlist is complete (every flop driven).

        Called by :meth:`simulate` before the first cycle so an incomplete
        two-phase construction fails loudly, naming the flop, instead of
        crashing obscurely (or silently holding init state) mid-simulation.
        """
        undriven = [
            (handle, self.net_name(flop.q))
            for handle, flop in enumerate(self._flops)
            if flop.d is None
        ]
        if undriven:
            described = ", ".join(
                f"flop {handle} ({name!r})" for handle, name in undriven
            )
            raise ValueError(
                f"netlist {self.name!r} has {len(undriven)} DFF(s) with no D "
                f"input: {described} — each add_dff() needs a matching "
                "drive_dff() before simulation"
            )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def simulate(
        self, vectors: Sequence[Sequence[int]]
    ) -> "SimulationResult":
        """Run cycle-based simulation.

        ``vectors[t]`` holds the primary-input values of cycle ``t``, in
        :attr:`inputs` order.  Returns per-cycle primary-output values plus
        per-net toggle counts (including the settled values of cycle 0
        against the reset state — flops at their init values, everything else
        evaluated from the first vector).
        """
        self.validate()
        values = [0] * self.net_count
        for flop in self._flops:
            values[flop.q] = flop.init
        if 1 in self._const_nets:
            values[self._const_nets[1]] = 1

        toggles = [0] * self.net_count
        output_trace: List[Tuple[int, ...]] = []
        gate_output_toggles = [0] * len(self._gates)
        flop_output_toggles = [0] * len(self._flops)
        previous: Optional[List[int]] = None

        for vector in vectors:
            if len(vector) != len(self._inputs):
                raise ValueError(
                    f"vector has {len(vector)} values for {len(self._inputs)} inputs"
                )
            for net, value in zip(self._inputs, vector):
                if value not in (0, 1):
                    raise ValueError(f"input values must be 0/1, got {value}")
                values[net] = value
            for gate in self._gates:
                values[gate.output] = gate.spec.evaluate(
                    tuple(values[i] for i in gate.inputs)
                )
            if previous is not None:
                for net in range(self.net_count):
                    if values[net] != previous[net]:
                        toggles[net] += 1
                for index, gate in enumerate(self._gates):
                    if values[gate.output] != previous[gate.output]:
                        gate_output_toggles[index] += 1
                for index, flop in enumerate(self._flops):
                    if values[flop.q] != previous[flop.q]:
                        flop_output_toggles[index] += 1
            output_trace.append(tuple(values[net] for _, net in self._outputs))
            previous = list(values)
            # Clock edge: capture D into Q for the next cycle.
            next_q = [values[flop.d] for flop in self._flops]  # type: ignore[index]
            for flop, q_value in zip(self._flops, next_q):
                values[flop.q] = q_value

        return SimulationResult(
            netlist=self,
            cycles=len(vectors),
            outputs=output_trace,
            net_toggles=toggles,
            gate_output_toggles=gate_output_toggles,
            flop_output_toggles=flop_output_toggles,
        )


@dataclass
class SimulationResult:
    """Everything the power estimator needs from one simulation run."""

    netlist: Netlist
    cycles: int
    outputs: List[Tuple[int, ...]]
    net_toggles: List[int]
    gate_output_toggles: List[int]
    flop_output_toggles: List[int]

    def output_words(self) -> List[Dict[str, int]]:
        """Per-cycle primary outputs as name → value dictionaries."""
        names = [name for name, _ in self.netlist.outputs]
        return [dict(zip(names, row)) for row in self.outputs]
