"""Gate library for the structural codec models.

The paper synthesized its encoders/decoders onto a 0.35 µm, 3.3 V
SGS-Thomson standard-cell library (Section 4.1).  We model each cell with
three numbers sufficient for switching-power estimation:

* ``input_cap`` — gate capacitance presented to each fanin (farads),
* ``intrinsic_cap`` — drain/diffusion capacitance at the cell output,
* ``internal_energy`` — short-circuit + internal-node energy dissipated per
  output transition (joules).

The values below are representative of a 0.35 µm 3.3 V process (input caps
of a few fF, internal energies of tens of fJ); DESIGN.md documents this
calibration as the substitute for the proprietary library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

#: Femtofarad / femtojoule helpers for readable constants.
FF = 1e-15
FJ = 1e-15


#: Nanosecond helper for readable delay constants.
NS = 1e-9


@dataclass(frozen=True)
class GateSpec:
    """Static description of one cell type."""

    name: str
    arity: int
    evaluate: Callable[[Tuple[int, ...]], int]
    input_cap: float  # farads per input pin
    intrinsic_cap: float  # farads at the output pin
    internal_energy: float  # joules per output transition
    delay: float = 0.15 * NS  # propagation delay (seconds), typical load

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GateSpec({self.name})"


def _inv(inputs: Tuple[int, ...]) -> int:
    return 1 - inputs[0]


def _buf(inputs: Tuple[int, ...]) -> int:
    return inputs[0]


def _and2(inputs: Tuple[int, ...]) -> int:
    return inputs[0] & inputs[1]


def _or2(inputs: Tuple[int, ...]) -> int:
    return inputs[0] | inputs[1]


def _nand2(inputs: Tuple[int, ...]) -> int:
    return 1 - (inputs[0] & inputs[1])


def _nor2(inputs: Tuple[int, ...]) -> int:
    return 1 - (inputs[0] | inputs[1])


def _xor2(inputs: Tuple[int, ...]) -> int:
    return inputs[0] ^ inputs[1]


def _xnor2(inputs: Tuple[int, ...]) -> int:
    return 1 - (inputs[0] ^ inputs[1])


def _mux2(inputs: Tuple[int, ...]) -> int:
    # inputs = (select, a, b): select ? a : b
    return inputs[1] if inputs[0] else inputs[2]


INV = GateSpec("INV", 1, _inv, input_cap=6 * FF, intrinsic_cap=4 * FF, internal_energy=8 * FJ, delay=0.10 * NS)
BUF = GateSpec("BUF", 1, _buf, input_cap=6 * FF, intrinsic_cap=5 * FF, internal_energy=12 * FJ, delay=0.12 * NS)
AND2 = GateSpec("AND2", 2, _and2, input_cap=7 * FF, intrinsic_cap=5 * FF, internal_energy=14 * FJ, delay=0.16 * NS)
OR2 = GateSpec("OR2", 2, _or2, input_cap=7 * FF, intrinsic_cap=5 * FF, internal_energy=14 * FJ, delay=0.16 * NS)
NAND2 = GateSpec("NAND2", 2, _nand2, input_cap=7 * FF, intrinsic_cap=5 * FF, internal_energy=10 * FJ, delay=0.13 * NS)
NOR2 = GateSpec("NOR2", 2, _nor2, input_cap=7 * FF, intrinsic_cap=5 * FF, internal_energy=10 * FJ, delay=0.13 * NS)
XOR2 = GateSpec("XOR2", 2, _xor2, input_cap=9 * FF, intrinsic_cap=6 * FF, internal_energy=22 * FJ, delay=0.24 * NS)
XNOR2 = GateSpec("XNOR2", 2, _xnor2, input_cap=9 * FF, intrinsic_cap=6 * FF, internal_energy=22 * FJ, delay=0.24 * NS)
MUX2 = GateSpec("MUX2", 3, _mux2, input_cap=8 * FF, intrinsic_cap=6 * FF, internal_energy=18 * FJ, delay=0.26 * NS)
#: DFF is special-cased by the netlist simulator (stateful); the spec only
#: carries its electrical parameters.  Clock-tree power is charged as a fixed
#: per-flop internal energy each cycle (see power.py).
DFF = GateSpec("DFF", 1, _buf, input_cap=8 * FF, intrinsic_cap=7 * FF, internal_energy=35 * FJ, delay=0.35 * NS)

#: Flip-flop clock-to-Q delay and setup time (static timing analysis).
DFF_CLK_TO_Q = 0.35 * NS
DFF_SETUP = 0.20 * NS

#: Energy drawn by a flip-flop from the clock network every cycle even when
#: its output does not toggle (internal clock buffering).
DFF_CLOCK_ENERGY = 6 * FJ

ALL_GATES: Dict[str, GateSpec] = {
    spec.name: spec
    for spec in (INV, BUF, AND2, OR2, NAND2, NOR2, XOR2, XNOR2, MUX2, DFF)
}
